//! The threaded engine: one host thread per target core plus the
//! simulation-manager logic, exactly as SlackSim maps a CMP simulation
//! onto a host CMP (paper §2).
//!
//! Each core thread owns its [`CoreModel`] and advances it while its local
//! time is below the max local time published by the manager. Events flow
//! through shared queues (OutQ/InQ); the manager consolidates OutQ
//! entries into the global queue and services them — greedily under slack
//! schemes, in sorted batches at window boundaries under barrier schemes
//! (cycle-by-cycle, quantum, and post-rollback replay).
//!
//! Checkpoints and rollbacks use a stop-sync protocol over per-core command
//! channels: *stop → run-to common local time → drain → snapshot/restore →
//! resume*, the in-memory equivalent of the paper's `fork()`-based global
//! checkpoints.
//!
//! Everything here is built on `std` alone: `std::sync::mpsc` channels for
//! commands/acks (each core's receiver is moved into its thread) and the
//! mutex-backed [`SharedQueue`]/[`SnapshotSlot`] primitives for event
//! queues and checkpoint hand-off.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::Arc;
use std::time::Instant;

use crate::engine::{
    CoreModel, EngineConfig, EngineError, FinishReason, ServiceSink, TickCtx, UncoreModel,
};
use crate::event::{CoreId, GlobalQueue, Inbox, Timestamped};
use crate::obs::{MetricsRegistry, ObsData, Phase, QueueKind, TraceEvent, TraceHandle, Tracer};
use crate::scheme::{PaceSample, Pacer};
use crate::speculative::{IntervalTracker, SpeculationStats};
use crate::stats::{Counters, SimReport};
use crate::sync::{SharedQueue, SnapshotSlot};
use crate::time::Cycle;
use crate::violation::ViolationTally;

/// Commands the manager sends to a core thread.
enum Command<C: CoreModel> {
    /// Pause at the current local time and acknowledge it.
    Stop,
    /// Run (ignoring the published max local time) until the local clock
    /// reaches the given cycle, then acknowledge.
    RunTo(u64),
    /// Clone the core model and pending inbox into the snapshot slot.
    Snapshot,
    /// Replace the core model and inbox with the given restored state.
    Restore(Box<(C, Inbox<<C as CoreModel>::Event>)>),
    /// Leave the control sub-loop and return to normal execution.
    Resume,
}

/// A core thread's snapshot: the model plus its undelivered inbox events.
type CoreSnapshot<C> = (C, Inbox<<C as CoreModel>::Event>);

/// State shared between the manager and one core thread.
struct CoreShared<C: CoreModel> {
    local: AtomicU64,
    max_local: AtomicU64,
    outq: SharedQueue<Timestamped<C::Event>>,
    inq: SharedQueue<Timestamped<C::Event>>,
    snapshot: SnapshotSlot<CoreSnapshot<C>>,
}

/// Execution mode of the speculation state machine (mirrors the
/// sequential engine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Base,
    Replay,
}

/// Manager-side copy of a global checkpoint.
struct ManagerSnapshot<C: CoreModel, U> {
    cores: Vec<CoreSnapshot<C>>,
    uncore: U,
    global: Cycle,
    tally: ViolationTally,
    committed: u64,
    pacer: Box<dyn Pacer>,
    next_sample: u64,
    last_sample_tally: ViolationTally,
}

/// Parallel slack-simulation engine: `n` core threads plus the manager.
///
/// Semantics are identical to
/// [`SequentialEngine`](crate::engine::SequentialEngine); under
/// cycle-by-cycle pacing the two produce bit-identical statistics. Under
/// slack pacing the threaded engine inherits the host scheduler's real
/// nondeterminism — which is the paper's point.
pub struct ThreadedEngine<C: CoreModel, U: UncoreModel<C::Event>> {
    cores: Vec<C>,
    uncore: U,
    cfg: EngineConfig,
}

impl<C: CoreModel, U: UncoreModel<C::Event>> ThreadedEngine<C, U> {
    /// Creates an engine over the given target cores and uncore.
    pub fn new(cores: Vec<C>, uncore: U, cfg: EngineConfig) -> Self {
        ThreadedEngine { cores, uncore, cfg }
    }

    /// Runs the simulation to completion, spawning one host thread per
    /// target core.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::NoCores`] for an empty core set.
    pub fn run(self) -> Result<SimReport, EngineError> {
        let ThreadedEngine { cores, uncore, cfg } = self;
        let n = cores.len();
        if n == 0 {
            return Err(EngineError::NoCores);
        }
        let started = Instant::now();

        if cfg.commit_target == 0 {
            // Trivial run: nothing to simulate.
            return Ok(SimReport {
                per_core: cores.iter().map(CoreModel::counters).collect(),
                uncore: uncore.counters(),
                obs: cfg.obs.map(|o| ObsData {
                    cores: n,
                    records: Vec::new(),
                    dropped: 0,
                    metrics: MetricsRegistry::new(o.sample_every),
                }),
                ..SimReport::default()
            });
        }

        let shared: Vec<Arc<CoreShared<C>>> = (0..n)
            .map(|_| {
                Arc::new(CoreShared {
                    local: AtomicU64::new(0),
                    max_local: AtomicU64::new(0),
                    outq: SharedQueue::new(),
                    inq: SharedQueue::new(),
                    snapshot: SnapshotSlot::new(),
                })
            })
            .collect();
        let done = Arc::new(AtomicBool::new(false));
        let committed = Arc::new(AtomicU64::new(0));

        // A disabled tracer keeps every instrumentation site at one relaxed
        // atomic load when no ObsConfig was given.
        let tracer = match cfg.obs {
            Some(o) => Tracer::new(o.trace_capacity),
            None => Tracer::disabled(),
        };

        let mut cmd_txs: Vec<Sender<Command<C>>> = Vec::with_capacity(n);
        let mut cmd_rxs: Vec<Receiver<Command<C>>> = Vec::with_capacity(n);
        let mut ack_txs: Vec<Sender<u64>> = Vec::with_capacity(n);
        let mut ack_rxs: Vec<Receiver<u64>> = Vec::with_capacity(n);
        for _ in 0..n {
            let (ct, cr) = channel();
            let (at, ar) = channel();
            cmd_txs.push(ct);
            cmd_rxs.push(cr);
            ack_txs.push(at);
            ack_rxs.push(ar);
        }

        // Cores start frozen (max local time 0); the manager publishes the
        // first window after taking the free initial checkpoint.
        let mut pacer = cfg.scheme.clone().into_pacer();
        let mut uncore = uncore;

        let report = std::thread::scope(|scope| {
            // --- Core threads ------------------------------------------------
            // std mpsc receivers are single-consumer: each core's command
            // receiver and ack sender are moved into its thread.
            let mut handles = Vec::with_capacity(n);
            for (i, ((model, cmd_rx), ack_tx)) in
                cores.into_iter().zip(cmd_rxs).zip(ack_txs).enumerate()
            {
                let shared = Arc::clone(&shared[i]);
                let done = Arc::clone(&done);
                let committed = Arc::clone(&committed);
                let th = tracer.handle();
                handles.push(scope.spawn(move || {
                    core_thread(
                        CoreId::new(i as u16),
                        model,
                        &shared,
                        &done,
                        &committed,
                        &cmd_rx,
                        &ack_tx,
                        th,
                    )
                }));
            }

            // --- Manager (this thread) ---------------------------------------
            let outcome = manager_loop(
                &cfg,
                &mut pacer,
                &mut uncore,
                &shared,
                &committed,
                &cmd_txs,
                &ack_rxs,
                &tracer,
            );

            done.store(true, Ordering::Release);
            let mut finished_cores = Vec::with_capacity(n);
            for h in handles {
                finished_cores.push(h.join().expect("core thread panicked"));
            }
            outcome.map(|mut m| {
                let obs = cfg.obs.map(|_| {
                    let (records, dropped) = tracer.drain();
                    ObsData {
                        cores: n,
                        records,
                        dropped,
                        metrics: std::mem::take(&mut m.metrics),
                    }
                });
                let mut report = m.into_report(finished_cores, started.elapsed());
                report.obs = obs;
                report
            })
        })?;
        Ok(report)
    }
}

/// Core-thread main loop: tick while below the max local time, obey
/// manager commands, exit when the done flag rises.
///
/// Records Run/Wait phase spans on its own trace handle at every
/// transition between ticking and being capped by the window.
#[allow(clippy::too_many_arguments)]
fn core_thread<C: CoreModel>(
    core: CoreId,
    mut model: C,
    shared: &CoreShared<C>,
    done: &AtomicBool,
    committed: &AtomicU64,
    cmd_rx: &Receiver<Command<C>>,
    ack_tx: &Sender<u64>,
    mut th: TraceHandle,
) -> C {
    let mut inbox: Inbox<C::Event> = Inbox::new();
    let mut outbox: Vec<Timestamped<C::Event>> = Vec::new();
    let mut idle_spins = 0u32;
    // Cores start frozen at max local time 0: open a Wait span immediately.
    let mut running = false;
    th.record(
        Cycle::ZERO,
        TraceEvent::PhaseBegin {
            core,
            phase: Phase::Wait,
        },
    );

    'main: loop {
        // Control channel has priority over everything.
        match cmd_rx.try_recv() {
            Ok(mut cmd) => loop {
                match cmd {
                    Command::Stop => {
                        ack_tx
                            .send(shared.local.load(Ordering::Relaxed))
                            .expect("manager alive");
                    }
                    Command::RunTo(target) => {
                        let mut l = shared.local.load(Ordering::Relaxed);
                        while l < target {
                            while let Some(ev) = shared.inq.pop() {
                                inbox.deliver(ev);
                            }
                            let c = {
                                let mut ctx = TickCtx::new(Cycle::new(l), &mut inbox, &mut outbox);
                                model.tick(&mut ctx)
                            };
                            committed.fetch_add(u64::from(c), Ordering::Relaxed);
                            for ev in outbox.drain(..) {
                                shared.outq.push(ev);
                            }
                            l += 1;
                            shared.local.store(l, Ordering::Release);
                        }
                        ack_tx.send(l).expect("manager alive");
                    }
                    Command::Snapshot => {
                        while let Some(ev) = shared.inq.pop() {
                            inbox.deliver(ev);
                        }
                        shared.snapshot.put((model.clone(), inbox.clone()));
                        ack_tx
                            .send(shared.local.load(Ordering::Relaxed))
                            .expect("manager alive");
                    }
                    Command::Restore(state) => {
                        let (m, ib) = *state;
                        model = m;
                        inbox = ib;
                        ack_tx
                            .send(shared.local.load(Ordering::Relaxed))
                            .expect("manager alive");
                    }
                    Command::Resume => continue 'main,
                }
                cmd = cmd_rx.recv().expect("manager alive");
            },
            Err(TryRecvError::Empty) => {}
            Err(TryRecvError::Disconnected) => break 'main,
        }

        if done.load(Ordering::Acquire) {
            break 'main;
        }

        while let Some(ev) = shared.inq.pop() {
            inbox.deliver(ev);
        }
        let l = shared.local.load(Ordering::Relaxed);
        let m = shared.max_local.load(Ordering::Acquire);
        if l < m {
            if !running {
                th.record(
                    Cycle::new(l),
                    TraceEvent::PhaseEnd {
                        core,
                        phase: Phase::Wait,
                    },
                );
                th.record(
                    Cycle::new(l),
                    TraceEvent::PhaseBegin {
                        core,
                        phase: Phase::Run,
                    },
                );
                running = true;
            }
            idle_spins = 0;
            let c = {
                let mut ctx = TickCtx::new(Cycle::new(l), &mut inbox, &mut outbox);
                model.tick(&mut ctx)
            };
            committed.fetch_add(u64::from(c), Ordering::Relaxed);
            for ev in outbox.drain(..) {
                shared.outq.push(ev);
            }
            shared.local.store(l + 1, Ordering::Release);
        } else {
            // Capped: wait for the manager to widen the window.
            if running {
                th.record(
                    Cycle::new(l),
                    TraceEvent::PhaseEnd {
                        core,
                        phase: Phase::Run,
                    },
                );
                th.record(
                    Cycle::new(l),
                    TraceEvent::PhaseBegin {
                        core,
                        phase: Phase::Wait,
                    },
                );
                running = false;
            }
            idle_spins += 1;
            if idle_spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }
    let l = shared.local.load(Ordering::Relaxed);
    th.record(
        Cycle::new(l),
        TraceEvent::PhaseEnd {
            core,
            phase: if running { Phase::Run } else { Phase::Wait },
        },
    );
    model
}

/// Manager-side run state that eventually becomes the report.
struct ManagerOutcome<U> {
    uncore: U,
    global: Cycle,
    committed: u64,
    tally: ViolationTally,
    kernel: Counters,
    bound_trace: Vec<(Cycle, u64)>,
    metrics: MetricsRegistry,
}

impl<U> ManagerOutcome<U> {
    fn into_report<C: CoreModel>(self, cores: Vec<C>, wall: std::time::Duration) -> SimReport
    where
        U: UncoreModel<C::Event>,
    {
        SimReport {
            global_cycles: self.global.as_u64(),
            committed: self.committed,
            violations: self.tally,
            wall,
            per_core: cores.iter().map(CoreModel::counters).collect(),
            uncore: self.uncore.counters(),
            kernel: self.kernel,
            bound_trace: self.bound_trace,
            obs: None,
        }
    }
}

/// The simulation-manager loop (runs on the caller's thread inside the
/// scope).
#[allow(clippy::too_many_arguments)]
fn manager_loop<C: CoreModel, U: UncoreModel<C::Event>>(
    cfg: &EngineConfig,
    pacer: &mut Box<dyn Pacer>,
    uncore: &mut U,
    shared: &[Arc<CoreShared<C>>],
    committed: &AtomicU64,
    cmd_txs: &[Sender<Command<C>>],
    ack_rxs: &[Receiver<u64>],
    tracer: &Tracer,
) -> Result<ManagerOutcome<U>, EngineError> {
    let n = shared.len();
    let sample_period = cfg.effective_sample_period();
    let mut gq: GlobalQueue<C::Event> = GlobalQueue::new();
    let mut sink: ServiceSink<C::Event> = ServiceSink::new();

    let mut tally = ViolationTally::new();
    let mut detected = ViolationTally::new();
    let mut next_sample = sample_period;
    let mut last_sample_tally = tally;
    let mut bound_trace: Vec<(Cycle, u64)> = Vec::new();

    // Observability: the manager's own trace handle plus the metrics
    // registry sampled on the obs cadence. Host-side manager wait time is
    // accumulated around the yield points and emitted once per sample.
    let obs_on = cfg.obs.is_some();
    let mut th = tracer.handle();
    let mut metrics = MetricsRegistry::new(cfg.obs.map_or(1024, |o| o.sample_every));
    let mut last_metrics_detected = 0u64;
    let mut mgr_wait_ns: u64 = 0;
    let mut last_wait_ns: u64 = 0;

    let spec = cfg.speculation;
    let mut tracker = spec.map(|s| IntervalTracker::new(s.interval));
    let mut spec_stats = SpeculationStats::default();
    let mut mode = Mode::Base;
    // `u64::MAX` keeps every checkpoint site unreachable when speculation
    // is off; `cp_interval` is only ever added under a `spec.is_some()`
    // guard.
    let cp_interval: u64 = spec.map_or(u64::MAX, |s| s.interval);
    let mut next_cp_trigger: u64 = cp_interval;
    let mut replay_start = Cycle::ZERO;
    let mut pending_rollback = false;

    // The initial state is a free checkpoint taken before the cores move.
    let mut snapshot: Option<ManagerSnapshot<C, U>> = if spec.is_some() {
        let cores = snapshot_all(shared, cmd_txs, ack_rxs, &mut gq, uncore, &mut sink);
        // Discard side effects of the (empty) drain above.
        Some(ManagerSnapshot {
            cores,
            uncore: uncore.clone(),
            global: Cycle::ZERO,
            tally,
            committed: 0,
            pacer: pacer.clone_box(),
            next_sample,
            last_sample_tally,
        })
    } else {
        None
    };

    let mut window_end = if pacer.barrier_service() {
        pacer.window_end(Cycle::ZERO)
    } else {
        pacer.window_end(Cycle::ZERO).min(cfg.lead_cap(Cycle::ZERO))
    };
    publish_window(shared, window_end);

    let finish_reason;
    let final_global;
    // Largest clock spread observed at manager sampling points (the
    // empirical slack; a lower bound on the true maximum since the manager
    // samples asynchronously).
    let mut max_spread: u64 = 0;

    loop {
        drain_outqs(shared, &mut gq);
        let locals: Vec<u64> = shared
            .iter()
            .map(|s| s.local.load(Ordering::Acquire))
            .collect();
        let global = Cycle::new(locals.iter().copied().min().expect("n >= 1"));
        max_spread =
            max_spread.max(locals.iter().copied().max().expect("n >= 1") - global.as_u64());
        let barrier = mode == Mode::Replay || pacer.barrier_service();

        if let Some(tr) = &mut tracker {
            tr.close_intervals_up_to(global);
        }
        while global.as_u64() >= next_sample {
            let delta = tally.since(&last_sample_tally);
            let sample = PaceSample {
                global: Cycle::new(next_sample),
                window_cycles: sample_period,
                window_violations: delta.total(),
            };
            let bound_before = pacer.current_bound();
            pacer.on_sample(&sample);
            last_sample_tally = tally;
            if let Some(b) = pacer.current_bound() {
                bound_trace.push((Cycle::new(next_sample), b));
                if let Some(old) = bound_before {
                    if old != b {
                        th.record(
                            Cycle::new(next_sample),
                            TraceEvent::BoundChange {
                                old,
                                new: b,
                                rate: sample.rate(),
                            },
                        );
                    }
                }
            }
            next_sample += sample_period;
        }

        // Metrics sampling (observability cadence, independent of the
        // pacer's feedback period).
        if obs_on && metrics.sample_ready(global) {
            for (i, &l) in locals.iter().enumerate() {
                let core = CoreId::new(i as u16);
                let drift = l.saturating_sub(global.as_u64());
                metrics.gauge(&format!("drift.core{i}"), global, drift as f64);
                metrics.histogram("core_drift").record(drift);
                th.record(
                    global,
                    TraceEvent::LocalTimeSample {
                        core,
                        cycle: Cycle::new(l),
                    },
                );
                let outq = shared[i].outq.len() as u64;
                let inq = shared[i].inq.len() as u64;
                metrics.histogram("outq_depth").record(outq);
                metrics.histogram("inq_depth").record(inq);
                th.record(
                    global,
                    TraceEvent::QueueDepth {
                        q: QueueKind::OutQ(core),
                        len: outq,
                    },
                );
                th.record(
                    global,
                    TraceEvent::QueueDepth {
                        q: QueueKind::InQ(core),
                        len: inq,
                    },
                );
            }
            if let Some(b) = pacer.current_bound() {
                metrics.gauge("slack_bound", global, b as f64);
            }
            let window = metrics.sample_every() as f64;
            let live_rate = (detected.total() - last_metrics_detected) as f64 / window;
            last_metrics_detected = detected.total();
            metrics.gauge("violation_rate", global, live_rate);
            metrics.gauge("globalq_depth", global, gq.len() as f64);
            metrics.histogram("globalq_depth").record(gq.len() as u64);
            th.record(
                global,
                TraceEvent::QueueDepth {
                    q: QueueKind::Global,
                    len: gq.len() as u64,
                },
            );
            let wait_delta = mgr_wait_ns - last_wait_ns;
            last_wait_ns = mgr_wait_ns;
            metrics.gauge("manager_wait_ns", global, wait_delta as f64);
            metrics.histogram("manager_wait_ns").record(wait_delta);
            th.record(global, TraceEvent::ManagerWait { ns: wait_delta });
        }

        if barrier {
            if locals.iter().all(|&l| l == window_end.as_u64()) {
                drain_outqs(shared, &mut gq);
                service_all(
                    &mut gq,
                    uncore,
                    &mut sink,
                    shared,
                    &mut tally,
                    &mut detected,
                    &mut tracker,
                    &mut pending_rollback,
                    &spec,
                    mode == Mode::Base,
                    &mut th,
                );
                debug_assert!(!pending_rollback, "barrier servicing cannot violate");
                let g = window_end;
                if committed.load(Ordering::Acquire) >= cfg.commit_target {
                    finish_reason = FinishReason::CommitTarget;
                    final_global = g;
                    break;
                }
                if g.as_u64() >= cfg.max_cycles {
                    finish_reason = FinishReason::CycleCap;
                    final_global = g;
                    break;
                }
                if spec.is_some() && g.as_u64() >= next_cp_trigger {
                    // Cores are already aligned at the boundary: snapshot
                    // directly.
                    if mode == Mode::Replay {
                        spec_stats.replay_cycles += g.saturating_sub(replay_start);
                        mode = Mode::Base;
                        for c in CoreId::all(n) {
                            th.record(
                                g,
                                TraceEvent::PhaseEnd {
                                    core: c,
                                    phase: Phase::Replay,
                                },
                            );
                        }
                    }
                    let cores = snapshot_all(shared, cmd_txs, ack_rxs, &mut gq, uncore, &mut sink);
                    spec_stats.checkpoints += 1;
                    th.record(
                        Cycle::new(next_cp_trigger.min(g.as_u64())),
                        TraceEvent::Checkpoint {
                            interval: spec_stats.checkpoints,
                            cycles: g.as_u64().saturating_sub(next_cp_trigger),
                        },
                    );
                    snapshot = Some(ManagerSnapshot {
                        cores,
                        uncore: uncore.clone(),
                        global: g,
                        tally,
                        committed: committed.load(Ordering::Acquire),
                        pacer: pacer.clone_box(),
                        next_sample,
                        last_sample_tally,
                    });
                    next_cp_trigger = g.as_u64() + cp_interval;
                }
                window_end = if mode == Mode::Replay {
                    g + 1
                } else {
                    pacer.window_end(g)
                };
                publish_window(shared, window_end);
            } else {
                if committed.load(Ordering::Acquire) >= cfg.commit_target {
                    // Graceful finish for barrier schemes: converge the
                    // window on the furthest core instead of waiting for a
                    // distant quantum boundary.
                    let furthest = locals.iter().copied().max().expect("n >= 1");
                    let clamp = Cycle::new(furthest.max(global.as_u64() + 1));
                    if clamp < window_end {
                        window_end = clamp;
                        publish_window(shared, window_end);
                    }
                }
                if obs_on {
                    let wait_started = Instant::now();
                    std::hint::spin_loop();
                    std::thread::yield_now();
                    mgr_wait_ns += wait_started.elapsed().as_nanos() as u64;
                } else {
                    std::hint::spin_loop();
                    std::thread::yield_now();
                }
            }
            continue;
        }

        // --- Greedy servicing -------------------------------------------
        service_all(
            &mut gq,
            uncore,
            &mut sink,
            shared,
            &mut tally,
            &mut detected,
            &mut tracker,
            &mut pending_rollback,
            &spec,
            mode == Mode::Base,
            &mut th,
        );

        if pending_rollback {
            let snap = snapshot.as_ref().expect("rollback requires a snapshot");
            stop_all(cmd_txs, ack_rxs);
            drain_outqs(shared, &mut gq);
            gq.clear();
            for s in shared {
                s.inq.clear();
                s.outq.clear();
            }
            let cur_global = Cycle::new(
                shared
                    .iter()
                    .map(|s| s.local.load(Ordering::Acquire))
                    .min()
                    .expect("n >= 1"),
            );
            spec_stats.rollbacks += 1;
            let wasted = cur_global.saturating_sub(snap.global);
            spec_stats.wasted_cycles += wasted;
            th.record(
                snap.global,
                TraceEvent::Rollback {
                    interval: spec_stats.rollbacks,
                    replay_cycles: wasted,
                },
            );
            for (i, tx) in cmd_txs.iter().enumerate() {
                let (m, ib) = &snap.cores[i];
                shared[i]
                    .local
                    .store(snap.global.as_u64(), Ordering::Release);
                tx.send(Command::Restore(Box::new((m.clone(), ib.clone()))))
                    .expect("core alive");
            }
            await_acks(ack_rxs);
            *uncore = snap.uncore.clone();
            tally = snap.tally;
            committed.store(snap.committed, Ordering::Release);
            *pacer = snap.pacer.clone_box();
            next_sample = snap.next_sample;
            last_sample_tally = snap.last_sample_tally;
            mode = Mode::Replay;
            replay_start = snap.global;
            for c in CoreId::all(n) {
                th.record(
                    snap.global,
                    TraceEvent::PhaseBegin {
                        core: c,
                        phase: Phase::Replay,
                    },
                );
            }
            next_cp_trigger = snap.global.as_u64() + cp_interval;
            pending_rollback = false;
            window_end = snap.global + 1;
            publish_window(shared, window_end);
            resume_all(cmd_txs);
            continue;
        }

        let committed_now = committed.load(Ordering::Acquire);
        if committed_now >= cfg.commit_target {
            finish_reason = FinishReason::CommitTarget;
            final_global = global;
            break;
        }
        if global.as_u64() >= cfg.max_cycles {
            finish_reason = FinishReason::CycleCap;
            final_global = global;
            break;
        }

        if spec.is_some() && global.as_u64() >= next_cp_trigger {
            // Stop-sync all cores at a common local time ≥ the trigger.
            stop_all(cmd_txs, ack_rxs);
            let stop_at = shared
                .iter()
                .map(|s| s.local.load(Ordering::Acquire))
                .max()
                .expect("n >= 1")
                .max(next_cp_trigger);
            publish_window(shared, Cycle::new(stop_at));
            for tx in cmd_txs {
                tx.send(Command::RunTo(stop_at)).expect("core alive");
            }
            // Keep servicing while cores run up to the stop point.
            let mut acked = 0usize;
            let mut ack_iters = ack_rxs.iter().cycle();
            while acked < n {
                drain_outqs(shared, &mut gq);
                service_all(
                    &mut gq,
                    uncore,
                    &mut sink,
                    shared,
                    &mut tally,
                    &mut detected,
                    &mut tracker,
                    &mut pending_rollback,
                    &spec,
                    mode == Mode::Base,
                    &mut th,
                );
                let rx = ack_iters.next().expect("cycle never ends");
                if rx.try_recv().is_ok() {
                    acked += 1;
                }
            }
            drain_outqs(shared, &mut gq);
            service_all(
                &mut gq,
                uncore,
                &mut sink,
                shared,
                &mut tally,
                &mut detected,
                &mut tracker,
                &mut pending_rollback,
                &spec,
                mode == Mode::Base,
                &mut th,
            );
            if pending_rollback {
                // A violation surfaced during stop-sync: resume and let the
                // rollback branch at the top of the loop handle it.
                resume_all(cmd_txs);
                continue;
            }
            // Cores are paused right after their RunTo ack: snapshot them.
            for tx in cmd_txs {
                tx.send(Command::Snapshot).expect("core alive");
            }
            await_acks(ack_rxs);
            let cores: Vec<CoreSnapshot<C>> = shared
                .iter()
                .map(|s| s.snapshot.take().expect("snapshot filled"))
                .collect();
            if mode == Mode::Replay {
                spec_stats.replay_cycles += Cycle::new(stop_at).saturating_sub(replay_start);
                mode = Mode::Base;
                for c in CoreId::all(n) {
                    th.record(
                        Cycle::new(stop_at),
                        TraceEvent::PhaseEnd {
                            core: c,
                            phase: Phase::Replay,
                        },
                    );
                }
            }
            spec_stats.checkpoints += 1;
            th.record(
                Cycle::new(next_cp_trigger.min(stop_at)),
                TraceEvent::Checkpoint {
                    interval: spec_stats.checkpoints,
                    cycles: stop_at.saturating_sub(next_cp_trigger),
                },
            );
            snapshot = Some(ManagerSnapshot {
                cores,
                uncore: uncore.clone(),
                global: Cycle::new(stop_at),
                tally,
                committed: committed.load(Ordering::Acquire),
                pacer: pacer.clone_box(),
                next_sample,
                last_sample_tally,
            });
            next_cp_trigger = stop_at + cp_interval;
            let stop_locals = vec![stop_at; n];
            window_end = publish_greedy_windows(pacer, shared, &stop_locals, cfg);
            resume_all(cmd_txs);
            continue;
        }

        window_end = publish_greedy_windows(pacer, shared, &locals, cfg);
        if obs_on {
            let wait_started = Instant::now();
            std::thread::yield_now();
            mgr_wait_ns += wait_started.elapsed().as_nanos() as u64;
        } else {
            std::thread::yield_now();
        }
    }

    let mut kernel = Counters::new();
    kernel.set("checkpoints", spec_stats.checkpoints);
    kernel.set("rollbacks", spec_stats.rollbacks);
    kernel.set("wasted_cycles", spec_stats.wasted_cycles);
    kernel.set("replay_cycles", spec_stats.replay_cycles);
    kernel.set("violations_detected_total", detected.total());
    kernel.set(
        "violations_detected_bus",
        detected.count(crate::violation::ViolationKind::Bus),
    );
    kernel.set(
        "violations_detected_map",
        detected.count(crate::violation::ViolationKind::Map),
    );
    kernel.set(
        "finish_commit_target",
        u64::from(finish_reason == FinishReason::CommitTarget),
    );
    kernel.set("max_clock_spread", max_spread);
    if let Some(tr) = &tracker {
        kernel.set("intervals_total", tr.intervals_total());
        kernel.set("intervals_violating", tr.intervals_violating());
        kernel.set(
            "mean_first_violation_distance_x1000",
            (tr.mean_first_distance() * 1000.0).round() as u64,
        );
    }

    Ok(ManagerOutcome {
        uncore: uncore.clone(),
        global: final_global,
        committed: committed.load(Ordering::Acquire),
        tally,
        kernel,
        bound_trace,
        metrics,
    })
}

/// Sets every core's max local time.
fn publish_window<C: CoreModel>(shared: &[Arc<CoreShared<C>>], window_end: Cycle) {
    for s in shared {
        s.max_local.store(window_end.as_u64(), Ordering::Release);
    }
}

/// Publishes windows for a greedy scheme: per-core when the pacer paces
/// against peers (Lax-P2P), uniform otherwise; both clamped by the
/// implementation lead cap. Returns the largest published window for the
/// manager's bookkeeping.
fn publish_greedy_windows<C: CoreModel>(
    pacer: &mut Box<dyn Pacer>,
    shared: &[Arc<CoreShared<C>>],
    locals: &[u64],
    cfg: &EngineConfig,
) -> Cycle {
    let global = Cycle::new(locals.iter().copied().min().expect("n >= 1"));
    let cap = cfg.lead_cap(global);
    let cycles: Vec<Cycle> = locals.iter().map(|&l| Cycle::new(l)).collect();
    if let Some(wins) = pacer.window_ends(&cycles) {
        let mut max_win = Cycle::ZERO;
        for (i, s) in shared.iter().enumerate() {
            let w = wins[i].min(cap);
            s.max_local.store(w.as_u64(), Ordering::Release);
            max_win = max_win.max(w);
        }
        max_win
    } else {
        let w = pacer.window_end(global).min(cap);
        publish_window(shared, w);
        w
    }
}

/// Moves every queued OutQ entry into the global queue.
fn drain_outqs<C: CoreModel>(shared: &[Arc<CoreShared<C>>], gq: &mut GlobalQueue<C::Event>) {
    for (i, s) in shared.iter().enumerate() {
        while let Some(ev) = s.outq.pop() {
            gq.push(CoreId::new(i as u16), ev);
        }
    }
}

/// Services everything currently in the global queue, recording a
/// violation trace instant (attributed to the originating core) for every
/// violation the uncore reports.
#[allow(clippy::too_many_arguments)]
fn service_all<C: CoreModel, U: UncoreModel<C::Event>>(
    gq: &mut GlobalQueue<C::Event>,
    uncore: &mut U,
    sink: &mut ServiceSink<C::Event>,
    shared: &[Arc<CoreShared<C>>],
    tally: &mut ViolationTally,
    detected: &mut ViolationTally,
    tracker: &mut Option<IntervalTracker>,
    pending_rollback: &mut bool,
    spec: &Option<crate::speculative::SpeculationConfig>,
    base_mode: bool,
    th: &mut TraceHandle,
) {
    while let Some((from, ev)) = gq.pop() {
        uncore.service(from, ev, sink);
        for (to, out) in sink.take_deliveries() {
            shared[to.index()].inq.push(out);
        }
        for v in sink.take_violations() {
            tally.record(v.kind);
            detected.record(v.kind);
            th.record(
                v.ts,
                TraceEvent::Violation {
                    kind: v.kind,
                    core: from,
                    ts: v.ts,
                    high_water: v.high_water,
                },
            );
            if let Some(tr) = tracker.as_mut() {
                tr.observe_violation(v.ts);
            }
            if base_mode {
                if let Some(sc) = spec {
                    if sc.rollback_on.selects(v.kind) {
                        *pending_rollback = true;
                    }
                }
            }
        }
        if *pending_rollback {
            gq.clear();
            break;
        }
    }
}

/// Sends `Stop` to every core and waits for all acknowledgements.
fn stop_all<C: CoreModel>(cmd_txs: &[Sender<Command<C>>], ack_rxs: &[Receiver<u64>]) {
    for tx in cmd_txs {
        tx.send(Command::Stop).expect("core alive");
    }
    await_acks(ack_rxs);
}

/// Sends `Resume` to every (paused) core.
fn resume_all<C: CoreModel>(cmd_txs: &[Sender<Command<C>>]) {
    for tx in cmd_txs {
        tx.send(Command::Resume).expect("core alive");
    }
}

/// Blocks until every core has acknowledged the last command.
fn await_acks(ack_rxs: &[Receiver<u64>]) {
    for rx in ack_rxs {
        rx.recv().expect("core alive");
    }
}

/// Stop-syncs all cores at a common local time and collects their
/// snapshots (used for the free initial checkpoint).
fn snapshot_all<C: CoreModel, U: UncoreModel<C::Event>>(
    shared: &[Arc<CoreShared<C>>],
    cmd_txs: &[Sender<Command<C>>],
    ack_rxs: &[Receiver<u64>],
    gq: &mut GlobalQueue<C::Event>,
    uncore: &mut U,
    sink: &mut ServiceSink<C::Event>,
) -> Vec<CoreSnapshot<C>> {
    stop_all(cmd_txs, ack_rxs);
    drain_outqs(shared, gq);
    // Service without violation bookkeeping: only used at cycle 0 where the
    // queues are empty anyway; drain defensively.
    while let Some((from, ev)) = gq.pop() {
        uncore.service(from, ev, sink);
        for (to, out) in sink.take_deliveries() {
            shared[to.index()].inq.push(out);
        }
        let _ = sink.take_violations();
    }
    for tx in cmd_txs {
        tx.send(Command::Snapshot).expect("core alive");
    }
    await_acks(ack_rxs);
    let snaps = shared
        .iter()
        .map(|s| s.snapshot.take().expect("snapshot filled"))
        .collect();
    resume_all(cmd_txs);
    snaps
}

#[cfg(test)]
mod tests {
    // The threaded engine is exercised end-to-end in the workspace
    // integration tests (tests/engines_agree.rs and friends), where it is
    // compared against the sequential engine on real CMP models.
}
