//! `slacksim` — command-line front end: run one configured slack
//! simulation and print the report.
//!
//! ```text
//! slacksim [--benchmark barnes|fft|lu|water] [--scheme cc|bounded|unbounded|quantum|adaptive|p2p]
//!          [--bound N] [--quantum N] [--target PCT] [--band PCT]
//!          [--engine seq|threaded] [--cores N] [--commit N] [--seed N]
//!          [--checkpoint N] [--rollback all|map] [--verbose]
//! ```

use slacksim::scheme::{AdaptiveConfig, Scheme};
use slacksim::{
    Benchmark, EngineKind, Simulation, SpeculationConfig, ViolationKind, ViolationSelect,
};

struct Args(Vec<String>);

impl Args {
    fn value(&self, flag: &str) -> Option<&str> {
        self.0
            .iter()
            .position(|a| a == flag)
            .and_then(|i| self.0.get(i + 1))
            .map(String::as_str)
    }

    fn parsed<T: std::str::FromStr>(&self, flag: &str, default: T) -> T {
        self.value(flag)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    fn has(&self, flag: &str) -> bool {
        self.0.iter().any(|a| a == flag)
    }
}

fn main() {
    let args = Args(std::env::args().skip(1).collect());
    if args.has("--help") || args.has("-h") {
        println!("{}", HELP);
        return;
    }

    let benchmark = args
        .value("--benchmark")
        .and_then(Benchmark::parse)
        .unwrap_or(Benchmark::Fft);
    let scheme = match args.value("--scheme").unwrap_or("cc") {
        "bounded" => Scheme::BoundedSlack {
            bound: args.parsed("--bound", 8),
        },
        "unbounded" | "su" => Scheme::UnboundedSlack,
        "quantum" => Scheme::Quantum {
            quantum: args.parsed("--quantum", 50),
        },
        "adaptive" => Scheme::Adaptive(AdaptiveConfig::percent(
            args.parsed("--target", 0.2),
            args.parsed("--band", 5.0),
        )),
        "p2p" => Scheme::LaxP2p {
            lead: args.parsed("--bound", 8),
            period: args.parsed("--period", 500),
            seed: args.parsed("--seed", 1),
        },
        _ => Scheme::CycleByCycle,
    };
    let engine = match args.value("--engine").unwrap_or("seq") {
        "threaded" | "thr" => EngineKind::Threaded,
        _ => EngineKind::Sequential,
    };

    let mut sim = Simulation::new(benchmark);
    sim.scheme(scheme.clone())
        .engine(engine)
        .cores(args.parsed("--cores", 8))
        .commit_target(args.parsed("--commit", 500_000))
        .seed(args.parsed("--seed", 1));
    if let Some(interval) = args.value("--checkpoint").and_then(|v| v.parse().ok()) {
        let select = match args.value("--rollback") {
            Some("all") => ViolationSelect::all(),
            Some("map") => ViolationSelect::only(&[ViolationKind::Map]),
            _ => ViolationSelect::none(),
        };
        sim.speculation(SpeculationConfig::speculative(interval, select));
    }

    eprintln!("running {benchmark} under {} ...", scheme.name());
    match sim.run() {
        Ok(report) => {
            println!("{report}");
            if args.has("--verbose") {
                println!("\nuncore counters:\n{}", report.uncore);
                println!("\nkernel counters:\n{}", report.kernel);
                for (i, core) in report.per_core.iter().enumerate() {
                    println!("\ncore {i}:\n{core}");
                }
            }
        }
        Err(e) => {
            eprintln!("simulation failed: {e}");
            std::process::exit(1);
        }
    }
}

const HELP: &str = "\
slacksim — run one slack simulation of the paper's 8-core CMP

USAGE:
  slacksim [--benchmark barnes|fft|lu|water] [--scheme cc|bounded|unbounded|quantum|adaptive|p2p]
           [--bound N] [--quantum N] [--target PCT] [--band PCT] [--period N]
           [--engine seq|threaded] [--cores N] [--commit N] [--seed N]
           [--checkpoint INTERVAL] [--rollback all|map] [--verbose]

EXAMPLES:
  slacksim --benchmark barnes --scheme unbounded --engine threaded
  slacksim --scheme adaptive --target 0.2 --band 5
  slacksim --scheme bounded --bound 16 --checkpoint 5000 --rollback all --verbose";
