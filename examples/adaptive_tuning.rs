//! Adaptive slack in action: watch the feedback loop throttle and widen
//! the slack bound to hold a target violation rate (paper §4).
//!
//! ```sh
//! cargo run --release --example adaptive_tuning
//! ```

use slacksim::scheme::{AdaptiveConfig, Scheme};
use slacksim::{Benchmark, EngineKind, Simulation};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("adaptive slack on Barnes: target rate sweep\n");
    println!(
        "{:>10} | {:>12} | {:>10} | {:>12} | {:>12}",
        "target", "measured", "mean bound", "exec cycles", "adjustments"
    );

    for target_percent in [0.05, 0.1, 0.2, 0.5, 1.0] {
        let cfg = AdaptiveConfig::percent(target_percent, 5.0);
        let report = Simulation::new(Benchmark::Barnes)
            .commit_target(400_000)
            .scheme(Scheme::Adaptive(cfg))
            .engine(EngineKind::Sequential)
            .run()?;
        let mean_bound = if report.bound_trace.is_empty() {
            0.0
        } else {
            report
                .bound_trace
                .iter()
                .map(|&(_, b)| b as f64)
                .sum::<f64>()
                / report.bound_trace.len() as f64
        };
        println!(
            "{:>9.2}% | {:>11.4}% | {:>10.2} | {:>12} | {:>12}",
            target_percent,
            100.0 * report.violation_rate(),
            mean_bound,
            report.global_cycles,
            report.bound_trace.len(),
        );
    }

    // Show one bound trajectory in detail.
    let report = Simulation::new(Benchmark::Barnes)
        .commit_target(200_000)
        .scheme(Scheme::Adaptive(AdaptiveConfig::percent(0.2, 5.0)))
        .engine(EngineKind::Sequential)
        .run()?;
    println!("\nbound trajectory (target 0.20%, 5% band):");
    for chunk in report.bound_trace.chunks(8).take(8) {
        let cells: Vec<String> = chunk
            .iter()
            .map(|(cycle, bound)| format!("{}:{}", cycle, bound))
            .collect();
        println!("  {}", cells.join("  "));
    }
    println!("  (cycle:bound pairs, one per sampling window)");
    Ok(())
}
