//! Experiment scaling knobs, shared by every regenerating binary.
//!
//! The paper simulates 100 M committed instructions per run on a 2×4-core
//! Xeon; the default scale here is laptop/CI-sized. Every binary accepts:
//!
//! ```text
//! --commit <N>   committed-instruction target per run (default varies)
//! --seed <N>     run seed (default 1)
//! --cores <N>    target cores (default 8, the paper's machine)
//! --quick        quarter-scale run for smoke testing
//! --full         4× scale for more stable statistics
//! ```

/// Parsed scaling options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Committed-instruction target per simulation run.
    pub commit: u64,
    /// Run seed.
    pub seed: u64,
    /// Target core count.
    pub cores: usize,
}

impl Scale {
    /// Parses scaling flags from an argument iterator, with
    /// `default_commit` as the experiment's baseline run length.
    ///
    /// Unknown flags are ignored so binaries can layer their own.
    ///
    /// # Examples
    ///
    /// ```
    /// use slacksim_bench::scale::Scale;
    ///
    /// let s = Scale::parse(["--commit", "5000", "--seed", "9"].iter().map(|s| s.to_string()), 100_000);
    /// assert_eq!(s.commit, 5000);
    /// assert_eq!(s.seed, 9);
    /// assert_eq!(s.cores, 8);
    /// ```
    pub fn parse(args: impl Iterator<Item = String>, default_commit: u64) -> Self {
        let mut scale = Scale {
            commit: default_commit,
            seed: 1,
            cores: 8,
        };
        let args: Vec<String> = args.collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--commit" => {
                    if let Some(v) = args.get(i + 1).and_then(|v| v.parse().ok()) {
                        scale.commit = v;
                        i += 1;
                    }
                }
                "--seed" => {
                    if let Some(v) = args.get(i + 1).and_then(|v| v.parse().ok()) {
                        scale.seed = v;
                        i += 1;
                    }
                }
                "--cores" => {
                    if let Some(v) = args.get(i + 1).and_then(|v| v.parse().ok()) {
                        scale.cores = v;
                        i += 1;
                    }
                }
                "--quick" => scale.commit = default_commit / 4,
                "--full" => scale.commit = default_commit * 4,
                _ => {}
            }
            i += 1;
        }
        scale.commit = scale.commit.max(1);
        scale
    }

    /// Parses from the process arguments.
    pub fn from_env(default_commit: u64) -> Self {
        Scale::parse(std::env::args().skip(1), default_commit)
    }

    /// Renders a campaign sweep-spec document seeded from this scale:
    /// the given schemes crossed with `seeds` consecutive run seeds
    /// starting at `self.seed`, every job at this scale's commit target
    /// and core count. The output is the `slacksim sweep --spec` JSON
    /// format (grid size = `schemes.len() * seeds`).
    ///
    /// # Examples
    ///
    /// ```
    /// use slacksim_bench::scale::Scale;
    ///
    /// let s = Scale { commit: 5000, seed: 1, cores: 2 };
    /// let spec = s.sweep_spec(&["cc", "bounded", "quantum"], 2);
    /// assert!(spec.contains("\"seed\": [1, 2]"));
    /// ```
    pub fn sweep_spec(&self, schemes: &[&str], seeds: u64) -> String {
        let scheme_list = schemes
            .iter()
            .map(|s| format!("\"{s}\""))
            .collect::<Vec<_>>()
            .join(", ");
        let seed_list = (self.seed..self.seed + seeds.max(1))
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "{{\n  \"v\": 1,\n  \"commit\": {},\n  \"engine\": \"seq\",\n  \"axes\": {{\n    \
             \"scheme\": [{scheme_list}],\n    \"cores\": [{}],\n    \
             \"workload\": [\"fft\"],\n    \"seed\": [{seed_list}]\n  }}\n}}\n",
            self.commit, self.cores,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str], default: u64) -> Scale {
        Scale::parse(args.iter().map(|s| s.to_string()), default)
    }

    #[test]
    fn defaults() {
        let s = parse(&[], 1000);
        assert_eq!(
            s,
            Scale {
                commit: 1000,
                seed: 1,
                cores: 8
            }
        );
    }

    #[test]
    fn quick_and_full() {
        assert_eq!(parse(&["--quick"], 1000).commit, 250);
        assert_eq!(parse(&["--full"], 1000).commit, 4000);
    }

    #[test]
    fn explicit_overrides() {
        let s = parse(&["--cores", "4", "--commit", "77", "--seed", "3"], 1000);
        assert_eq!(s.cores, 4);
        assert_eq!(s.commit, 77);
        assert_eq!(s.seed, 3);
    }

    #[test]
    fn malformed_values_are_ignored() {
        let s = parse(&["--commit", "abc"], 1000);
        assert_eq!(s.commit, 1000);
    }

    #[test]
    fn commit_never_zero() {
        assert_eq!(parse(&["--commit", "0"], 1000).commit, 1);
    }

    #[test]
    fn sweep_spec_is_a_valid_grid_of_the_expected_size() {
        use slacksim_core::campaign::SweepSpec;

        let s = Scale {
            commit: 4000,
            seed: 7,
            cores: 2,
        };
        let spec = SweepSpec::parse(&s.sweep_spec(&["cc", "bounded", "quantum"], 2))
            .expect("generated spec parses");
        assert_eq!(spec.cardinality(), 6, "3 schemes x 2 seeds");
        assert_eq!(spec.commit, 4000);
        let jobs = spec.expand();
        assert!(jobs.iter().all(|j| j.cores == 2));
        assert!(jobs.iter().any(|j| j.seed == 7) && jobs.iter().any(|j| j.seed == 8));
    }
}
