//! # slacksim-bench — experiment harness
//!
//! Regenerates every figure and table of the paper's evaluation (plus the
//! extension experiments listed in `DESIGN.md` §6). Each binary prints a
//! plain-text table shaped like the paper's:
//!
//! | binary | regenerates |
//! |---|---|
//! | `fig3_violations` | Figure 3(a)/(b): violation rates vs slack bound |
//! | `fig4_adaptive` | Figure 4: sim time vs violation rate |
//! | `table1_benchmarks` | Table 1: benchmark input sets |
//! | `table2_sim_time` | Table 2: CC / SU / adaptive / checkpointing times |
//! | `table3_interval_fraction` | Table 3: fraction of violating intervals |
//! | `table4_first_violation` | Table 4: mean distance to first violation |
//! | `table5_speculative_model` | Table 5: analytical speculative estimate |
//! | `ext_speculative_measured` | E8: fully deployed rollback, measured |
//! | `ext_quantum_vs_slack` | E10: quantum vs slack error modes |
//! | `repro_all` | everything above, in order |
//!
//! All binaries accept `--commit N`, `--seed N`, `--cores N`, `--quick`
//! and `--full` (see [`scale::Scale`]).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;
pub mod runner;
pub mod scale;
pub mod table;
