//! Extension E10: quantum simulation vs bounded slack at equal window
//! sizes — complementary error modes.

use slacksim_bench::experiments::ext;
use slacksim_bench::scale::Scale;
use slacksim_workloads::Benchmark;

fn main() {
    let scale = Scale::from_env(200_000);
    for benchmark in Benchmark::ALL {
        let rows = ext::measure_quantum(&scale, benchmark);
        println!("{}", ext::render_quantum(benchmark, &rows));
    }
}
