//! The event vocabulary exchanged between core threads and the simulation
//! manager over OutQ/InQ (paper §2).

use crate::cache::LineAddr;
use crate::mesi::{BusOp, MesiState};

/// Per-core request tag matching replies to MSHRs.
pub type ReqId = u32;

/// Events flowing between a core thread and the manager.
///
/// The first group travels core → manager (requests placed in the core's
/// OutQ); the second travels manager → core (completions and snoop actions
/// delivered into the core's InQ). Timestamps live in the enclosing
/// [`Timestamped`](slacksim_core::event::Timestamped) wrapper: a request's
/// timestamp is the issuing core's local time, a reply's timestamp is the
/// manager-computed completion time on the response bus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemEvent {
    // ---- core → manager ------------------------------------------------
    /// A coherence transaction for the request bus.
    Request {
        /// Transaction type.
        op: BusOp,
        /// Line concerned.
        line: LineAddr,
        /// Requester-local tag for matching the reply.
        req: ReqId,
        /// `true` when this is an instruction fetch (no coherence state is
        /// installed in remote caches' data arrays).
        ifetch: bool,
    },
    /// Eviction notice for a dirty line (bus writeback; no reply).
    Writeback {
        /// Line being written back.
        line: LineAddr,
    },
    /// The core reached a global barrier and is spinning.
    BarrierArrive {
        /// Barrier episode id.
        id: u32,
    },
    /// The core wants a lock and is spinning.
    LockAcquire {
        /// Lock id.
        id: u32,
    },
    /// The core released a lock (fire-and-forget).
    LockRelease {
        /// Lock id.
        id: u32,
    },

    // ---- manager → core ------------------------------------------------
    /// Completion of a [`MemEvent::Request`]: data (or ownership) is
    /// available at the event's timestamp.
    Reply {
        /// Tag of the completed request.
        req: ReqId,
        /// Line concerned.
        line: LineAddr,
        /// State the line enters in the requester's L1.
        grant: MesiState,
    },
    /// Snoop-induced invalidation of a remote copy.
    Invalidate {
        /// Line to drop.
        line: LineAddr,
    },
    /// Snoop-induced downgrade (M/E → S) of a remote copy.
    Downgrade {
        /// Line to downgrade.
        line: LineAddr,
    },
    /// All cores arrived: resume from the barrier.
    BarrierRelease {
        /// Barrier episode id.
        id: u32,
    },
    /// The lock is now held by this core.
    LockGranted {
        /// Lock id.
        id: u32,
    },
}

impl MemEvent {
    /// Whether this event travels core → manager.
    pub const fn is_request(&self) -> bool {
        matches!(
            self,
            MemEvent::Request { .. }
                | MemEvent::Writeback { .. }
                | MemEvent::BarrierArrive { .. }
                | MemEvent::LockAcquire { .. }
                | MemEvent::LockRelease { .. }
        )
    }

    /// Whether this event occupies the snooping bus (and therefore
    /// participates in bus-order violation detection). Synchronisation
    /// traffic is executed reliably inside the simulator and bypasses the
    /// modelled bus, exactly as SlackSim executes the MP_Simplesim
    /// parallel-programming APIs.
    pub const fn uses_bus(&self) -> bool {
        matches!(self, MemEvent::Request { .. } | MemEvent::Writeback { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_classification() {
        assert!(MemEvent::Writeback {
            line: LineAddr::new(1)
        }
        .is_request());
        assert!(MemEvent::BarrierArrive { id: 0 }.is_request());
        assert!(!MemEvent::Reply {
            req: 0,
            line: LineAddr::new(0),
            grant: MesiState::Shared
        }
        .is_request());
        assert!(!MemEvent::BarrierRelease { id: 0 }.is_request());
    }

    #[test]
    fn bus_usage_classification() {
        assert!(MemEvent::Request {
            op: BusOp::Rd,
            line: LineAddr::new(3),
            req: 1,
            ifetch: false
        }
        .uses_bus());
        assert!(MemEvent::Writeback {
            line: LineAddr::new(3)
        }
        .uses_bus());
        assert!(!MemEvent::LockAcquire { id: 1 }.uses_bus());
        assert!(!MemEvent::BarrierArrive { id: 1 }.uses_bus());
    }
}
