//! Design-space-exploration campaigns: sweep grids run as fleets.
//!
//! The production-scale story for a simulator is fleets of runs, not one
//! run — fast architectural exploration means sweeping {scheme × bound ×
//! quantum × cores × workload × seed} grids and keeping every host core
//! busy until the whole grid has settled. This module is the
//! target-agnostic half of that story, layered on four existing
//! subsystems rather than duplicating any of them:
//!
//! * [`spec`] — the sweep-spec format (parsed with the in-tree
//!   [`obs::json`](crate::obs::json) parser) and its expansion into a
//!   deterministic, stably-ordered job grid with unique job IDs.
//! * [`pool`] — a work-stealing worker pool over the
//!   [`sched`](crate::sched) seam, so pool schedules are fuzzable under
//!   the conformance crate's virtual scheduler like engine schedules.
//! * [`live`] — campaign heartbeats through the
//!   [`obs::live`](crate::obs::live) sink machinery (`"campaign":true`
//!   discriminates them from engine heartbeats).
//! * [`aggregate`] — the durable artifacts: manifest, per-job rows,
//!   streamed JSONL and final CSV aggregates, all wall-clock-free so
//!   resumed campaigns reproduce uninterrupted ones byte for byte.
//!
//! What this module deliberately does *not* know is how to run one job:
//! executing a grid point is the facade's business (`slacksim::sweep`),
//! which wires each [`spec::Job`] to a `Simulation` with durable
//! checkpoints through the [`persist`](crate::persist) layer. The seam
//! keeps the campaign machinery testable without a simulator in the
//! loop and reusable for any future job shape.

pub mod aggregate;
pub mod live;
pub mod pool;
pub mod spec;

pub use aggregate::{
    render_aggregate_csv, JobRow, Manifest, AGGREGATE_VERSION, CSV_HEADER, LEGACY_CSV_HEADER,
};
pub use live::{CampaignLiveHandle, CampaignStats};
pub use pool::{run_jobs, PoolOutcome};
pub use spec::{
    Axes, CheckpointSpec, EngineToken, Job, SchemeKind, SpecError, SweepSpec, UncoreToken,
    MAX_GRID_JOBS, SPEC_VERSION,
};
