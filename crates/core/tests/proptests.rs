//! Property-based tests for the kernel's data structures and invariants.

use proptest::prelude::*;

use slacksim_core::event::{CoreId, GlobalQueue, Inbox, Timestamped};
use slacksim_core::model::{speculative_time, SpeculativeModelInputs};
use slacksim_core::rng::Xoshiro256;
use slacksim_core::scheme::{AdaptiveConfig, AdaptiveController, PaceSample, Pacer, Scheme};
use slacksim_core::speculative::IntervalTracker;
use slacksim_core::time::Cycle;
use slacksim_core::violation::{KeyedMonitor, TimestampMonitor, ViolationTally, ViolationKind};

proptest! {
    /// The monitor must flag exactly the operations that are strictly
    /// smaller than the running maximum of everything seen before.
    #[test]
    fn monitor_matches_brute_force_oracle(ts in prop::collection::vec(0u64..1000, 1..200)) {
        let mut monitor = TimestampMonitor::new();
        let mut max_seen = 0u64;
        for &t in &ts {
            let expected = t < max_seen;
            let got = monitor.observe(Cycle::new(t));
            prop_assert_eq!(got, expected, "at ts {}", t);
            max_seen = max_seen.max(t);
        }
    }

    /// Keyed monitors are independent per key.
    #[test]
    fn keyed_monitor_isolates_keys(
        ops in prop::collection::vec((0u8..4, 0u64..1000), 1..200)
    ) {
        let mut km: KeyedMonitor<u8> = KeyedMonitor::new();
        let mut maxes = [0u64; 4];
        for &(key, t) in &ops {
            let expected = t < maxes[key as usize];
            prop_assert_eq!(km.observe(key, Cycle::new(t)), expected);
            maxes[key as usize] = maxes[key as usize].max(t);
        }
    }

    /// Draining the global queue after pushing yields events sorted by
    /// (timestamp, core, arrival order).
    #[test]
    fn global_queue_pops_in_canonical_order(
        events in prop::collection::vec((0u64..100, 0u16..8), 1..100)
    ) {
        let mut gq: GlobalQueue<usize> = GlobalQueue::new();
        for (i, &(ts, core)) in events.iter().enumerate() {
            gq.push(CoreId::new(core), Timestamped::new(Cycle::new(ts), i));
        }
        let mut expected: Vec<(u64, u16, usize)> = events
            .iter()
            .enumerate()
            .map(|(i, &(ts, core))| (ts, core, i))
            .collect();
        expected.sort();
        let mut got = Vec::new();
        while let Some((core, ev)) = gq.pop() {
            got.push((ev.ts.as_u64(), core.index() as u16, ev.payload));
        }
        prop_assert_eq!(got, expected);
    }

    /// The inbox never releases an event before its timestamp, and
    /// releases everything by the time `now` passes the maximum.
    #[test]
    fn inbox_due_semantics(
        events in prop::collection::vec(0u64..100, 1..60),
        probe in prop::collection::vec(0u64..120, 1..40)
    ) {
        let mut inbox: Inbox<u64> = Inbox::new();
        for &ts in &events {
            inbox.deliver(Timestamped::new(Cycle::new(ts), ts));
        }
        let mut probes = probe;
        probes.sort_unstable();
        let mut released = 0usize;
        for &now in &probes {
            while let Some(ev) = inbox.pop_due(Cycle::new(now)) {
                prop_assert!(ev.ts.as_u64() <= now);
                released += 1;
            }
        }
        while let Some(_ev) = inbox.pop_due(Cycle::new(1000)) {
            released += 1;
        }
        prop_assert_eq!(released, events.len());
    }

    /// The interval tracker agrees with a brute-force recomputation.
    #[test]
    fn interval_tracker_matches_oracle(
        violations in prop::collection::vec(0u64..5_000, 0..100),
        interval in 10u64..500,
        end in 5_000u64..6_000
    ) {
        let mut sorted = violations.clone();
        sorted.sort_unstable();
        let mut tracker = IntervalTracker::new(interval);
        // Feed violations in time order, closing intervals as we pass them
        // (as the engine does).
        for &v in &sorted {
            tracker.close_intervals_up_to(Cycle::new(v));
            tracker.observe_violation(Cycle::new(v));
        }
        tracker.close_intervals_up_to(Cycle::new(end));

        // Oracle: bucket violations by interval index.
        let total = end / interval;
        let mut first: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
        for &v in &sorted {
            let idx = v / interval;
            if idx < total {
                first.entry(idx).or_insert(v - idx * interval);
            }
        }
        prop_assert_eq!(tracker.intervals_total(), total);
        prop_assert_eq!(tracker.intervals_violating(), first.len() as u64);
        if !first.is_empty() {
            let mean = first.values().sum::<u64>() as f64 / first.len() as f64;
            prop_assert!((tracker.mean_first_distance() - mean).abs() < 1e-9);
        }
    }

    /// Tally `since` and `merge` are inverse-ish: a.merge(b.since(a)) == b
    /// when b dominates a.
    #[test]
    fn tally_merge_since_roundtrip(counts in prop::collection::vec((0u64..50, 0u64..50), 4)) {
        let mut a = ViolationTally::new();
        let mut b = ViolationTally::new();
        for (i, &(x, extra)) in counts.iter().enumerate() {
            let kind = ViolationKind::ALL[i];
            for _ in 0..x { a.record(kind); b.record(kind); }
            for _ in 0..extra { b.record(kind); }
        }
        let delta = b.since(&a);
        let mut a2 = a;
        a2.merge(&delta);
        prop_assert_eq!(a2, b);
    }

    /// Every pacer keeps its window strictly ahead of global time
    /// (liveness) and monotone in global time.
    #[test]
    fn pacer_windows_are_live_and_monotone(
        bound in 1u64..500,
        quantum in 1u64..500,
        globals in prop::collection::vec(0u64..100_000, 2..50)
    ) {
        let mut sorted = globals.clone();
        sorted.sort_unstable();
        let pacers: Vec<Box<dyn Pacer>> = vec![
            Scheme::CycleByCycle.into_pacer(),
            Scheme::BoundedSlack { bound }.into_pacer(),
            Scheme::UnboundedSlack.into_pacer(),
            Scheme::Quantum { quantum }.into_pacer(),
            Scheme::Adaptive(AdaptiveConfig::default()).into_pacer(),
        ];
        for p in &pacers {
            let mut last = Cycle::ZERO;
            for &g in &sorted {
                let w = p.window_end(Cycle::new(g));
                prop_assert!(w > Cycle::new(g), "{} stalls", p.scheme_name());
                prop_assert!(w >= last, "{} regressed", p.scheme_name());
                last = w;
            }
        }
    }

    /// The adaptive controller's published bound always stays within the
    /// configured limits, whatever the violation history.
    #[test]
    fn adaptive_bound_stays_in_limits(
        samples in prop::collection::vec((1u64..5_000, 0u64..500), 1..100),
        min_bound in 1u64..8,
        extra in 0u64..120
    ) {
        let max_bound = min_bound + extra;
        let mut ctl = AdaptiveController::new(AdaptiveConfig {
            min_bound,
            max_bound,
            initial_bound: min_bound,
            ..AdaptiveConfig::default()
        });
        let mut global = 0u64;
        for &(cycles, violations) in &samples {
            global += cycles;
            ctl.on_sample(&PaceSample {
                global: Cycle::new(global),
                window_cycles: cycles,
                window_violations: violations,
            });
            let b = ctl.current_bound().expect("adaptive bound");
            prop_assert!(b >= min_bound && b <= max_bound, "bound {} outside [{}, {}]", b, min_bound, max_bound);
        }
        prop_assert_eq!(ctl.samples(), samples.len() as u64);
    }

    /// A uniformly noisier history never ends with a larger bound than a
    /// quieter one (monotone response of the default policy).
    #[test]
    fn adaptive_response_is_monotone_in_noise(
        base in prop::collection::vec(0u64..4, 10..60),
        boost in 1u64..10
    ) {
        let mk = || AdaptiveController::new(AdaptiveConfig::default());
        let mut quiet = mk();
        let mut noisy = mk();
        let mut global = 0u64;
        for &v in &base {
            global += 1024;
            let s = |violations| PaceSample {
                global: Cycle::new(global),
                window_cycles: 1024,
                window_violations: violations,
            };
            quiet.on_sample(&s(v));
            noisy.on_sample(&s(v + boost));
        }
        prop_assert!(noisy.fractional_bound() <= quiet.fractional_bound());
    }

    /// The analytical model is monotone in F and Dr, and equals Tcpt when
    /// no interval violates.
    #[test]
    fn speculative_model_monotonicity(
        t_cc in 1.0f64..1000.0,
        t_cpt in 1.0f64..1000.0,
        f in 0.0f64..1.0,
        dr in 0.0f64..10_000.0,
        interval in 10_000.0f64..100_000.0
    ) {
        let base = SpeculativeModelInputs {
            t_cc, t_cpt, fraction_violating: f, rollback_distance: dr, interval,
        };
        let ts = speculative_time(&base);
        prop_assert!(ts >= 0.0);
        // No violations: exactly the checkpointing run.
        let clean = SpeculativeModelInputs { fraction_violating: 0.0, ..base };
        prop_assert!((speculative_time(&clean) - t_cpt).abs() < 1e-9);
        // The F-derivative of the model is Tcc − Tcpt·(1 − Dr/I): more
        // violating intervals cost more exactly when the CC replay is
        // slower than the normal-simulation time they displace.
        let df = t_cc - t_cpt * (1.0 - dr / interval);
        let worse = SpeculativeModelInputs {
            fraction_violating: (f + 0.1).min(1.0), ..base
        };
        let delta = speculative_time(&worse) - ts;
        if worse.fraction_violating > f {
            prop_assert!(
                (delta - df * (worse.fraction_violating - f)).abs() < 1e-6,
                "model must be affine in F"
            );
        }
        // Longer rollback distance can only cost more.
        let farther = SpeculativeModelInputs { rollback_distance: dr + 100.0, ..base };
        prop_assert!(speculative_time(&farther) >= ts - 1e-9);
    }

    /// Bounded RNG draws stay in range for arbitrary bounds and seeds.
    #[test]
    fn rng_bounded_draws(seed in any::<u64>(), bound in 1u64..u64::MAX, n in 1usize..100) {
        let mut rng = Xoshiro256::new(seed);
        for _ in 0..n {
            prop_assert!(rng.next_below(bound) < bound);
        }
    }

    /// Cycle arithmetic: saturating ops never panic and ordering holds.
    #[test]
    fn cycle_arithmetic(a in any::<u64>(), b in any::<u64>()) {
        let ca = Cycle::new(a);
        let cb = Cycle::new(b);
        prop_assert_eq!(ca.max(cb).as_u64(), a.max(b));
        prop_assert_eq!(ca.min(cb).as_u64(), a.min(b));
        prop_assert_eq!(ca.saturating_sub(cb), a.saturating_sub(b));
        prop_assert!(ca.saturating_add(b).as_u64() >= a || a.checked_add(b).is_none());
    }

    /// `next_multiple_of` lands strictly above on an exact multiple.
    #[test]
    fn cycle_next_multiple(raw in 0u64..1_000_000, q in 1u64..10_000) {
        let n = Cycle::new(raw).next_multiple_of(q);
        prop_assert!(n.as_u64() > raw);
        prop_assert_eq!(n.as_u64() % q, 0);
        prop_assert!(n.as_u64() - raw <= q);
    }
}
