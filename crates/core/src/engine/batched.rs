//! The batched BSP engine: quantum-compiled stepping.
//!
//! The paper's quantum scheme is a *synchronization policy*: cores run one
//! quantum of target cycles, then a barrier services every cross-core
//! event in timestamp order. The other two engines still dispatch that
//! policy cycle by cycle — burst scheduling, window bookkeeping and queue
//! churn on every iteration. This engine compiles the policy into an
//! *execution strategy* (the static-scheduling trick of Manticore and the
//! Berkeley emulation engine): each core runs its whole quantum in a
//! single [`CoreModel::run_window`] call over its hot state, emitting
//! cross-core events into a per-core staging buffer, and the engine only
//! exists at quantum boundaries — where the staged buffers are merged into
//! the global queue and serviced in timestamp order, exactly as the
//! barrier would have.
//!
//! Because a quantum run services events in timestamp order, the paper's
//! monitoring variables still run at every boundary: violation detection,
//! the adaptive controller's sampling cadence and the interval tracker all
//! observe the same state they would under the sequential engine. The
//! result is bit-identical to the sequential engine under any barrier
//! scheme (see the conformance oracle) at a fraction of the host cost.
//!
//! Documented divergences (all invisible to the simulated outcome):
//!
//! * the cycle cap and checkpoint trigger are honoured at the first
//!   quantum boundary at or past them, never mid-window;
//! * metrics/trace sampling happens at boundaries, where every core's
//!   drift is zero by construction.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

use crate::checkpoint::{CheckpointMode, Checkpointable};
use crate::engine::{
    CheckpointView, CoreModel, EngineConfig, EngineError, EngineResume, FinishReason, SaveHook,
    ServiceSink, UncoreModel,
};
use crate::event::{CoreId, Inbox, Timestamped};
use crate::obs::live::NO_BOUND;
use crate::obs::{
    LiveStats, MetricsRegistry, ObsData, Phase, ProfSite, Profiler, QueueKind, TraceEvent, Tracer,
};
use crate::scheme::PaceSample;
use crate::speculative::{IntervalTracker, SpeculationStats};
use crate::stats::{Counters, SimReport};
use crate::time::Cycle;
use crate::violation::ViolationTally;

/// The standing checkpoint: full restorable state at the last committed
/// boundary (same contents as the sequential engine's snapshot; the
/// batched engine never rolls back, so it exists only to feed delta
/// capture and the durable save hook).
struct Snapshot<C: CoreModel, U> {
    cores: Vec<C>,
    uncore: U,
    core_gens: Vec<u64>,
    uncore_gen: u64,
}

/// Quantum-compiled BSP engine: steps all cores a full quantum per
/// iteration over their hot state, resolving cross-core interaction only
/// at quantum boundaries.
///
/// Only meaningful under barrier schemes (`Scheme::Quantum`,
/// `Scheme::CycleByCycle`); [`run`](BatchedEngine::run) panics on greedy
/// schemes — the CLI validates this before construction and exits with a
/// usage error instead.
pub struct BatchedEngine<C: CoreModel, U: UncoreModel<C::Event>> {
    cores: Vec<C>,
    uncore: U,
    cfg: EngineConfig,
    save_hook: Option<SaveHook<C, U>>,
    resume: Option<EngineResume<C, U>>,
}

impl<C, U> BatchedEngine<C, U>
where
    C: CoreModel + Checkpointable,
    U: UncoreModel<C::Event> + Checkpointable,
{
    /// Creates an engine over the given target cores and uncore.
    pub fn new(cores: Vec<C>, uncore: U, cfg: EngineConfig) -> Self {
        BatchedEngine {
            cores,
            uncore,
            cfg,
            save_hook: None,
            resume: None,
        }
    }

    /// Installs a hook invoked after every committed checkpoint with a
    /// borrowed [`CheckpointView`] of the restorable state; the hook
    /// returns the number of bytes it persisted (or `None` on failure).
    #[must_use]
    pub fn with_save_hook(mut self, hook: SaveHook<C, U>) -> Self {
        self.save_hook = Some(hook);
        self
    }

    /// Starts the run from previously persisted state instead of cycle 0.
    #[must_use]
    pub fn with_resume(mut self, resume: EngineResume<C, U>) -> Self {
        self.resume = Some(resume);
        self
    }

    /// Runs the simulation to completion.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::NoCores`] for an empty core set and
    /// [`EngineError::Stalled`] if (defensively) the pacer publishes an
    /// empty window.
    ///
    /// # Panics
    ///
    /// Panics if the configured scheme is not a barrier scheme: the
    /// quantum-compiled loop is only equivalent to the paper's semantics
    /// when every cross-core event defers to a window boundary.
    pub fn run(self) -> Result<SimReport, EngineError> {
        let BatchedEngine {
            mut cores,
            mut uncore,
            cfg,
            mut save_hook,
            resume,
        } = self;
        let n = cores.len();
        if n == 0 {
            return Err(EngineError::NoCores);
        }
        let started = Instant::now();

        let mut pacer = cfg.scheme.clone().into_pacer();
        assert!(
            pacer.barrier_service(),
            "BatchedEngine requires a barrier scheme (quantum): greedy \
             schemes service events mid-window, which the batched loop \
             cannot observe"
        );
        let sample_period = cfg.effective_sample_period();
        let mut inboxes: Vec<Inbox<C::Event>> = (0..n).map(|_| Inbox::new()).collect();
        let mut staged: Vec<Vec<Timestamped<C::Event>>> = (0..n).map(|_| Vec::new()).collect();
        let mut sink: ServiceSink<C::Event> = ServiceSink::new();

        let mut tally = ViolationTally::new();
        let mut detected = ViolationTally::new();
        let mut committed: u64 = 0;
        let mut next_sample = sample_period;
        let mut last_sample_tally = tally;
        let mut bound_trace: Vec<(Cycle, u64)> = Vec::new();

        let tracer = match cfg.obs {
            Some(o) => Tracer::new(o.trace_capacity),
            None => Tracer::disabled(),
        };
        let mut th = tracer.handle();

        let prof = cfg.prof.clone().unwrap_or_else(Profiler::disabled);
        let ph = prof.handle();

        let live_stats = Arc::new(LiveStats::new());
        live_stats
            .commit_target
            .store(cfg.commit_target, Ordering::Relaxed);
        let live_handle = cfg
            .live
            .as_ref()
            .filter(|l| l.has_sink())
            .map(|l| crate::obs::live::spawn(l.clone(), Arc::clone(&live_stats), prof.clone()));
        let live_on = live_handle.is_some();

        let mut metrics = MetricsRegistry::new(cfg.obs.map_or(1024, |o| o.sample_every));
        let drift_ids: Vec<_> = (0..n)
            .map(|i| metrics.intern_gauge(&format!("drift.core{i}")))
            .collect();
        let slack_bound_id = metrics.intern_gauge("slack_bound");
        let violation_rate_id = metrics.intern_gauge("violation_rate");
        let globalq_depth_id = metrics.intern_gauge("globalq_depth");
        let globalq_depth_hist = metrics.intern_histogram("globalq_depth");
        let persist_bytes_id = metrics.intern_gauge("persist_bytes");
        let trace_dropped_id = metrics.intern_gauge("trace_dropped");
        let mut last_metrics_detected = 0u64;
        let mut last_metrics_cycle = 0u64;

        // Speculation: the quantum scheme is violation-free by
        // construction (every boundary services in timestamp order), so
        // this engine carries the checkpoint half only — no rollback path.
        let spec = cfg.speculation;
        let mut tracker = spec.map(|s| IntervalTracker::new(s.interval));
        let mut spec_stats = SpeculationStats::default();
        let mut next_cp_trigger: u64 = spec.map_or(u64::MAX, |s| s.interval);
        let cp_mode = spec.map_or(CheckpointMode::Full, |s| s.mode);

        let mut max_spread: u64 = 0;
        let mut start_global = Cycle::ZERO;
        if let Some(res) = resume {
            if res.cores.len() != n {
                return Err(EngineError::Resume(format!(
                    "snapshot holds {} cores but the engine was built with {n}",
                    res.cores.len()
                )));
            }
            start_global = res.global;
            cores.clear();
            inboxes.clear();
            for (core, inbox) in res.cores {
                cores.push(core);
                inboxes.push(inbox);
            }
            uncore = res.uncore;
            pacer = res.pacer;
            committed = res.committed;
            tally = res.tally;
            detected = res.detected;
            next_sample = res.next_sample;
            last_sample_tally = res.last_sample_tally;
            spec_stats = res.spec_stats;
            if let Some(tr) = res.tracker {
                tracker = Some(tr);
            }
            // res.rng is ignored: this engine has no burst scheduler.
            bound_trace = res.bound_trace;
            max_spread = res.max_spread;
            last_metrics_detected = detected.total();
            last_metrics_cycle = start_global.as_u64();
            next_cp_trigger = spec.map_or(u64::MAX, |s| start_global.as_u64() + s.interval);
            th.record(
                start_global,
                TraceEvent::StateRestore {
                    global: start_global,
                },
            );
        }

        let mut snapshot: Option<Snapshot<C, U>> = if spec.is_some() {
            // The initial state is trivially a (free) checkpoint; under
            // delta mode, seed every capture baseline (see the sequential
            // engine).
            let (core_gens, uncore_gen) = if cp_mode == CheckpointMode::Delta {
                let gens: Vec<u64> = cores
                    .iter_mut()
                    .map(|c| {
                        let g = c.generation();
                        let _ = c.capture_delta(g);
                        g
                    })
                    .collect();
                let ug = uncore.generation();
                let _ = uncore.capture_delta(ug);
                (gens, ug)
            } else {
                (vec![0; n], 0)
            };
            Some(Snapshot {
                cores: cores.clone(),
                uncore: uncore.clone(),
                core_gens,
                uncore_gen,
            })
        } else {
            None
        };

        let mut global = start_global;
        let finish_reason;

        loop {
            // `global` is always a serviced boundary here: all locals
            // equal, the global queue empty. These are exactly the states
            // at which the sequential engine's finish checks can pass
            // under a barrier scheme, so stopping here is bit-identical.
            if committed >= cfg.commit_target {
                finish_reason = FinishReason::CommitTarget;
                break;
            }
            if global.as_u64() >= cfg.max_cycles {
                finish_reason = FinishReason::CycleCap;
                break;
            }

            if let Some(tr) = &mut tracker {
                tr.close_intervals_up_to(global);
            }

            // Violation-rate sampling and adaptive feedback. Under a
            // barrier scheme the tally only changes at boundaries, so
            // firing the crossings here (instead of mid-window) hands the
            // pacer identical samples.
            while global.as_u64() >= next_sample {
                let delta = tally.since(&last_sample_tally);
                let sample = PaceSample {
                    global: Cycle::new(next_sample),
                    window_cycles: sample_period,
                    window_violations: delta.total(),
                };
                let bound_before = pacer.current_bound();
                pacer.on_sample(&sample);
                last_sample_tally = tally;
                if let Some(b) = pacer.current_bound() {
                    bound_trace.push((Cycle::new(next_sample), b));
                    if let Some(old) = bound_before {
                        if old != b {
                            th.record(
                                Cycle::new(next_sample),
                                TraceEvent::BoundChange {
                                    old,
                                    new: b,
                                    rate: sample.rate(),
                                },
                            );
                        }
                    }
                }
                next_sample += sample_period;
            }

            if cfg.obs.is_some() && metrics.sample_ready(global) {
                sample_boundary_metrics(BatchSampleCtx {
                    metrics: &mut metrics,
                    th: &mut th,
                    drift_ids: &drift_ids,
                    slack_bound_id,
                    violation_rate_id,
                    globalq_depth_id,
                    globalq_depth_hist,
                    trace_dropped_id,
                    tracer: &tracer,
                    cores: n,
                    global,
                    bound: pacer.current_bound(),
                    detected_total: detected.total(),
                    last_metrics_cycle: &mut last_metrics_cycle,
                    last_metrics_detected: &mut last_metrics_detected,
                });
            }

            if live_on {
                live_stats.global.store(global.as_u64(), Ordering::Relaxed);
                live_stats.committed.store(committed, Ordering::Relaxed);
                live_stats
                    .bound
                    .store(pacer.current_bound().unwrap_or(NO_BOUND), Ordering::Relaxed);
                live_stats
                    .violations
                    .store(tally.total(), Ordering::Relaxed);
                live_stats
                    .dropped_traces
                    .store(tracer.dropped_so_far(), Ordering::Relaxed);
                live_stats
                    .checkpoints
                    .store(spec_stats.checkpoints, Ordering::Relaxed);
            }

            // Checkpoint at the first boundary at or past the trigger.
            // Every event at or below the boundary has been serviced, so
            // queues are empty and the state is restorable as-is.
            if let Some(sp) = spec.filter(|_| global.as_u64() >= next_cp_trigger) {
                spec_stats.checkpoints += 1;
                th.record(
                    Cycle::new(next_cp_trigger.min(global.as_u64())),
                    TraceEvent::Checkpoint {
                        ordinal: spec_stats.checkpoints,
                        overshoot: global.as_u64().saturating_sub(next_cp_trigger),
                    },
                );
                uncore.compact_monitors(global);
                {
                    let _span = ph.enter(ProfSite::CheckpointCapture);
                    let snap = snapshot.as_mut().expect("spec enabled");
                    match cp_mode {
                        CheckpointMode::Full => {
                            snap.cores = cores.clone();
                            snap.uncore = uncore.clone();
                        }
                        CheckpointMode::Delta => {
                            let _apply = ph.enter(ProfSite::CheckpointApply);
                            for (i, c) in cores.iter_mut().enumerate() {
                                let d = c.capture_delta(snap.core_gens[i]);
                                snap.cores[i].apply_delta(d);
                                snap.core_gens[i] = c.generation();
                            }
                            let du = uncore.capture_delta(snap.uncore_gen);
                            snap.uncore.apply_delta(du);
                            snap.uncore_gen = uncore.generation();
                        }
                    }
                }
                if let Some(hook) = save_hook.as_mut() {
                    let _span = ph.enter(ProfSite::PersistIo);
                    let view = CheckpointView {
                        ordinal: spec_stats.checkpoints,
                        global,
                        cores: cores.iter().zip(inboxes.iter()).collect(),
                        uncore: &uncore,
                        committed,
                        tally,
                        detected,
                        next_sample,
                        last_sample_tally,
                        spec_stats,
                        tracker: tracker.as_ref(),
                        pacer: &*pacer,
                        rng: None,
                        bound_trace: &bound_trace,
                        max_spread,
                        shard_forwarded: Vec::new(),
                    };
                    let bytes = hook(&view).unwrap_or(0);
                    th.record(
                        global,
                        TraceEvent::StatePersist {
                            ordinal: spec_stats.checkpoints,
                            bytes,
                        },
                    );
                    metrics.gauge_by(persist_bytes_id, global, bytes as f64);
                }
                next_cp_trigger = global.as_u64() + sp.interval;
            }

            let window_end = pacer.window_end(global);
            if window_end <= global {
                return Err(EngineError::Stalled { at: global });
            }
            max_spread = max_spread.max(window_end - global);

            // The hot loop: every core runs the whole window in one call,
            // staging cross-core events locally. No scheduler, no queue
            // touch, no bookkeeping between cycles.
            for (i, core) in cores.iter_mut().enumerate() {
                th.record(
                    global,
                    TraceEvent::PhaseBegin {
                        core: CoreId::new(i as u16),
                        phase: Phase::Run,
                    },
                );
                {
                    let _span = ph.enter(ProfSite::BatchedRun);
                    committed +=
                        core.run_window(global, window_end, &mut inboxes[i], &mut staged[i]);
                }
                th.record(
                    window_end,
                    TraceEvent::PhaseEnd {
                        core: CoreId::new(i as u16),
                        phase: Phase::Run,
                    },
                );
            }

            // Boundary resolution: k-way merge of the staged buffers in
            // timestamp order. Each buffer is already sorted (a core stages
            // events as its clock advances), so a linear min-scan over the
            // per-core heads replaces a global-queue heap's push/pop sift
            // pair per event. The scan replaces its candidate only on a
            // strictly smaller timestamp and visits cores in index order,
            // so ties resolve to the lowest core id, then staging order —
            // identical to the sequential engine's pop order (timestamp,
            // then core id as fixed bus arbitration priority, then FIFO).
            {
                let _span = ph.enter(ProfSite::BatchedResolve);
                let mut heads: Vec<_> = staged.iter_mut().map(|b| b.drain(..).peekable()).collect();
                loop {
                    let mut best: Option<(Cycle, usize)> = None;
                    for (i, it) in heads.iter_mut().enumerate() {
                        if let Some(head) = it.peek() {
                            if best.is_none_or(|(ts, _)| head.ts < ts) {
                                best = Some((head.ts, i));
                            }
                        }
                    }
                    let Some((_, idx)) = best else { break };
                    let from = CoreId::new(idx as u16);
                    let ev = heads[idx].next().expect("peeked head");
                    {
                        uncore.service(from, ev, &mut sink);
                        for (to, out) in sink.take_deliveries() {
                            inboxes[to.index()].deliver(out);
                        }
                        for v in sink.take_violations() {
                            tally.record(v.kind);
                            detected.record(v.kind);
                            th.record(
                                v.ts,
                                TraceEvent::Violation {
                                    kind: v.kind,
                                    core: from,
                                    ts: v.ts,
                                    high_water: v.high_water,
                                },
                            );
                            if let Some(tr) = tracker.as_mut() {
                                tr.observe_violation(v.ts);
                            }
                            if let Some(sc) = &spec {
                                debug_assert!(
                                    !sc.rollback_on.selects(v.kind),
                                    "timestamp-ordered boundary servicing cannot \
                                     produce rollback-selected violations"
                                );
                            }
                        }
                    }
                }
            }

            global = window_end;
        }

        if let Some(tr) = &mut tracker {
            tr.close_intervals_up_to(global);
        }

        // Terminal gauge flush (see the sequential engine's epilogue).
        if cfg.obs.is_some() && global.as_u64() > last_metrics_cycle {
            sample_boundary_metrics(BatchSampleCtx {
                metrics: &mut metrics,
                th: &mut th,
                drift_ids: &drift_ids,
                slack_bound_id,
                violation_rate_id,
                globalq_depth_id,
                globalq_depth_hist,
                trace_dropped_id,
                tracer: &tracer,
                cores: n,
                global,
                bound: pacer.current_bound(),
                detected_total: detected.total(),
                last_metrics_cycle: &mut last_metrics_cycle,
                last_metrics_detected: &mut last_metrics_detected,
            });
        }

        let mut kernel = Counters::new();
        kernel.set("checkpoints", spec_stats.checkpoints);
        kernel.set("rollbacks", spec_stats.rollbacks);
        kernel.set("wasted_cycles", spec_stats.wasted_cycles);
        kernel.set("replay_cycles", spec_stats.replay_cycles);
        kernel.set("violations_detected_total", detected.total());
        kernel.set(
            "violations_detected_bus",
            detected.count(crate::violation::ViolationKind::Bus),
        );
        kernel.set(
            "violations_detected_map",
            detected.count(crate::violation::ViolationKind::Map),
        );
        kernel.set(
            "violations_detected_directory",
            detected.count(crate::violation::ViolationKind::Directory),
        );
        kernel.set(
            "finish_commit_target",
            u64::from(finish_reason == FinishReason::CommitTarget),
        );
        kernel.set("max_clock_spread", max_spread);
        if let Some(tr) = &tracker {
            kernel.set("intervals_total", tr.intervals_total());
            kernel.set("intervals_violating", tr.intervals_violating());
            kernel.set(
                "mean_first_violation_distance_x1000",
                (tr.mean_first_distance() * 1000.0).round() as u64,
            );
        }

        let obs = cfg.obs.map(|_| {
            th.flush();
            let (records, dropped) = tracer.drain();
            ObsData {
                cores: n,
                records,
                dropped,
                metrics,
            }
        });

        let wall = started.elapsed();

        if live_on {
            live_stats.global.store(global.as_u64(), Ordering::Relaxed);
            live_stats.committed.store(committed, Ordering::Relaxed);
            live_stats
                .violations
                .store(tally.total(), Ordering::Relaxed);
        }
        if let Some(h) = live_handle {
            h.finish();
        }

        Ok(SimReport {
            global_cycles: global.as_u64(),
            committed,
            violations: tally,
            wall,
            per_core: cores.iter().map(CoreModel::counters).collect(),
            uncore: uncore.counters(),
            kernel,
            bound_trace,
            obs,
            prof: prof.is_enabled().then(|| prof.snapshot(wall, 1)),
        })
    }
}

/// Borrowed context for one boundary metrics sample. At a boundary every
/// core's local clock equals global time, so the per-core drift gauges are
/// zero by construction — still emitted so CSV exports keep the same
/// column set as the other engines.
struct BatchSampleCtx<'a> {
    metrics: &'a mut MetricsRegistry,
    th: &'a mut crate::obs::TraceHandle,
    drift_ids: &'a [crate::obs::GaugeId],
    slack_bound_id: crate::obs::GaugeId,
    violation_rate_id: crate::obs::GaugeId,
    globalq_depth_id: crate::obs::GaugeId,
    globalq_depth_hist: crate::obs::HistId,
    trace_dropped_id: crate::obs::GaugeId,
    tracer: &'a Tracer,
    cores: usize,
    global: Cycle,
    bound: Option<u64>,
    detected_total: u64,
    last_metrics_cycle: &'a mut u64,
    last_metrics_detected: &'a mut u64,
}

/// Emits one metrics sample at a quantum boundary.
fn sample_boundary_metrics(ctx: BatchSampleCtx<'_>) {
    let BatchSampleCtx {
        metrics,
        th,
        drift_ids,
        slack_bound_id,
        violation_rate_id,
        globalq_depth_id,
        globalq_depth_hist,
        trace_dropped_id,
        tracer,
        cores,
        global,
        bound,
        detected_total,
        last_metrics_cycle,
        last_metrics_detected,
    } = ctx;
    for (i, &drift_id) in drift_ids.iter().enumerate().take(cores) {
        metrics.gauge_by(drift_id, global, 0.0);
        th.record(
            global,
            TraceEvent::LocalTimeSample {
                core: CoreId::new(i as u16),
                cycle: global,
            },
        );
    }
    if let Some(b) = bound {
        metrics.gauge_by(slack_bound_id, global, b as f64);
    }
    let elapsed = global.as_u64().saturating_sub(*last_metrics_cycle);
    let live_rate = if elapsed == 0 {
        0.0
    } else {
        (detected_total - *last_metrics_detected) as f64 / elapsed as f64
    };
    *last_metrics_cycle = global.as_u64();
    *last_metrics_detected = detected_total;
    metrics.gauge_by(violation_rate_id, global, live_rate);
    // The global queue is empty at every boundary (it only fills inside
    // the resolve span), so the depth gauge is structurally zero.
    metrics.gauge_by(globalq_depth_id, global, 0.0);
    metrics.histogram_by(globalq_depth_hist).record(0);
    th.record(
        global,
        TraceEvent::QueueDepth {
            q: QueueKind::Global,
            len: 0,
        },
    );
    metrics.gauge_by(trace_dropped_id, global, tracer.dropped_so_far() as f64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{SequentialEngine, TickCtx};
    use crate::scheme::Scheme;
    use crate::speculative::SpeculationConfig;
    use crate::violation::{TimestampMonitor, ViolationEvent, ViolationKind};

    #[derive(Debug, Clone, PartialEq, Eq)]
    enum Toy {
        Ping,
        Pong,
    }

    /// Toy core: commits one instruction per cycle and pings the uncore
    /// every `period` cycles. Uses the *default* `run_window` (the
    /// tick-by-tick loop), so these tests pin the engine machinery, not a
    /// model's fast-forward override.
    #[derive(Debug, Clone)]
    struct ToyCore {
        period: u64,
        committed: u64,
        pongs: u64,
    }

    impl ToyCore {
        fn new(period: u64) -> Self {
            ToyCore {
                period,
                committed: 0,
                pongs: 0,
            }
        }
    }

    impl CoreModel for ToyCore {
        type Event = Toy;

        fn tick(&mut self, ctx: &mut TickCtx<'_, Toy>) -> u32 {
            while let Some(ev) = ctx.pop_event() {
                assert_eq!(ev.payload, Toy::Pong);
                self.pongs += 1;
            }
            if ctx.now().as_u64().is_multiple_of(self.period) {
                ctx.emit(Toy::Ping);
            }
            self.committed += 1;
            1
        }

        fn committed(&self) -> u64 {
            self.committed
        }

        fn counters(&self) -> Counters {
            let mut c = Counters::new();
            c.set("committed", self.committed);
            c.set("pongs", self.pongs);
            c
        }
    }

    /// Toy uncore: one monitored resource, asserting in `service` that
    /// the stream arrives in canonical order — timestamp first, ties
    /// broken by core id. Any engine that merges staged buffers wrong
    /// fails here directly, not just through the monitor.
    #[derive(Debug, Clone, Default)]
    struct ToyUncore {
        monitor: TimestampMonitor,
        serviced: u64,
        last: Option<(u64, u16)>,
    }

    impl UncoreModel<Toy> for ToyUncore {
        fn service(&mut self, from: CoreId, ev: Timestamped<Toy>, sink: &mut ServiceSink<Toy>) {
            self.serviced += 1;
            let key = (ev.ts.as_u64(), from.index() as u16);
            if let Some(prev) = self.last {
                assert!(
                    prev <= key,
                    "service order regressed: {prev:?} then {key:?}"
                );
            }
            self.last = Some(key);
            if self.monitor.observe(ev.ts) {
                sink.report_violation(ViolationEvent {
                    kind: ViolationKind::Bus,
                    ts: ev.ts,
                    high_water: self.monitor.high_water(),
                });
            }
            sink.deliver(from, Timestamped::new(ev.ts + 5, Toy::Pong));
        }

        fn counters(&self) -> Counters {
            let mut c = Counters::new();
            c.set("serviced", self.serviced);
            c
        }
    }

    crate::impl_checkpointable_by_clone!(ToyCore, ToyUncore);

    fn toy_cores(n: usize) -> Vec<ToyCore> {
        (0..n).map(|i| ToyCore::new(3 + (i as u64 % 4))).collect()
    }

    fn run_batched(scheme: Scheme, target: u64) -> SimReport {
        let cfg = EngineConfig::new(scheme, target);
        BatchedEngine::new(toy_cores(4), ToyUncore::default(), cfg)
            .run()
            .expect("run succeeds")
    }

    #[test]
    fn empty_core_set_is_an_error() {
        let cfg = EngineConfig::new(Scheme::Quantum { quantum: 50 }, 10);
        let eng: BatchedEngine<ToyCore, ToyUncore> =
            BatchedEngine::new(Vec::new(), ToyUncore::default(), cfg);
        assert_eq!(eng.run().unwrap_err(), EngineError::NoCores);
    }

    #[test]
    #[should_panic(expected = "requires a barrier scheme")]
    fn greedy_schemes_are_rejected() {
        let _ = run_batched(Scheme::BoundedSlack { bound: 16 }, 1000);
    }

    #[test]
    fn quantum_matches_the_sequential_engine_bit_identically() {
        // The whole point of the engine: same quantum scheme, same
        // simulated outcome, regardless of the sequential engine's seed.
        for seed in [1u64, 7, 42] {
            let mut seq_cfg = EngineConfig::new(Scheme::Quantum { quantum: 50 }, 6000);
            seq_cfg.seed = seed;
            let seq = SequentialEngine::new(toy_cores(4), ToyUncore::default(), seq_cfg)
                .run()
                .unwrap();
            let bat = run_batched(Scheme::Quantum { quantum: 50 }, 6000);
            assert_eq!(seq.global_cycles, bat.global_cycles, "seed {seed}");
            assert_eq!(seq.committed, bat.committed, "seed {seed}");
            assert_eq!(seq.violations, bat.violations, "seed {seed}");
            assert_eq!(seq.per_core, bat.per_core, "seed {seed}");
            assert_eq!(seq.uncore, bat.uncore, "seed {seed}");
        }
    }

    #[test]
    fn cycle_by_cycle_also_matches_sequential() {
        // CC is the degenerate quantum-1 barrier scheme; the batched loop
        // must reproduce it exactly too.
        let seq = SequentialEngine::new(
            toy_cores(4),
            ToyUncore::default(),
            EngineConfig::new(Scheme::CycleByCycle, 2000),
        )
        .run()
        .unwrap();
        let bat = run_batched(Scheme::CycleByCycle, 2000);
        assert_eq!(seq.global_cycles, bat.global_cycles);
        assert_eq!(seq.committed, bat.committed);
        assert_eq!(seq.per_core, bat.per_core);
        assert_eq!(seq.uncore, bat.uncore);
    }

    #[test]
    fn quantum_has_zero_monitor_violations() {
        let r = run_batched(Scheme::Quantum { quantum: 50 }, 6000);
        assert_eq!(r.violations.total(), 0);
        assert!(r.uncore.get("serviced") > 0);
        assert!(r.core_total("pongs") > 0);
    }

    #[test]
    fn staged_events_resolve_in_timestamp_order() {
        // Two cores race events inside every quantum (periods 3 and 4
        // interleave their emission times, tying at every multiple of
        // 12); boundary resolution must service the merged stream in
        // timestamp order with ties broken by core id — ToyUncore
        // asserts exactly that on every service call.
        let cfg = EngineConfig::new(Scheme::Quantum { quantum: 64 }, 2000);
        let cores = vec![ToyCore::new(3), ToyCore::new(4)];
        let r = BatchedEngine::new(cores, ToyUncore::default(), cfg)
            .run()
            .unwrap();
        assert_eq!(r.violations.total(), 0);
        assert!(r.uncore.get("serviced") > 100, "the race actually ran");
    }

    #[test]
    fn cycle_cap_stops_at_a_boundary() {
        let mut cfg = EngineConfig::new(Scheme::Quantum { quantum: 50 }, u64::MAX);
        cfg.max_cycles = 500;
        let r = BatchedEngine::new(toy_cores(2), ToyUncore::default(), cfg)
            .run()
            .unwrap();
        assert_eq!(r.global_cycles, 500);
        assert_eq!(r.kernel.get("finish_commit_target"), 0);
    }

    #[test]
    fn checkpoint_only_counts_boundary_checkpoints() {
        let mut cfg = EngineConfig::new(Scheme::Quantum { quantum: 50 }, 40_000);
        cfg.speculation = Some(SpeculationConfig::checkpoint_only(1000));
        let r = BatchedEngine::new(toy_cores(4), ToyUncore::default(), cfg)
            .run()
            .unwrap();
        let cps = r.kernel.get("checkpoints");
        let expected = r.global_cycles / 1000;
        assert!(
            cps >= expected.saturating_sub(2) && cps <= expected + 2,
            "expected about {expected} checkpoints, took {cps}"
        );
        assert_eq!(r.kernel.get("rollbacks"), 0);
    }

    #[test]
    fn save_hook_fires_at_quantum_boundaries_without_rng() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let seen: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
        let sink = Rc::clone(&seen);
        let mut cfg = EngineConfig::new(Scheme::Quantum { quantum: 50 }, 20_000);
        cfg.speculation = Some(SpeculationConfig::checkpoint_only(700));
        let hook: SaveHook<ToyCore, ToyUncore> = Box::new(move |view| {
            assert!(view.rng.is_none(), "the batched engine has no burst RNG");
            sink.borrow_mut().push(view.global.as_u64());
            Some(1)
        });
        let _ = BatchedEngine::new(toy_cores(4), ToyUncore::default(), cfg)
            .with_save_hook(hook)
            .run()
            .unwrap();
        let globals = seen.borrow();
        assert!(!globals.is_empty(), "hook must fire");
        assert!(
            globals.iter().all(|g| g.is_multiple_of(50)),
            "checkpoints land exactly on quantum boundaries: {globals:?}"
        );
    }

    #[test]
    fn per_core_counters_sum_to_committed() {
        let r = run_batched(Scheme::Quantum { quantum: 32 }, 5000);
        assert_eq!(r.core_total("committed"), r.committed);
    }
}
