//! Reproducibility guarantees of the deterministic engine: bit-identical
//! reports per (config, seed) across the whole stack.

use slacksim::scheme::{AdaptiveConfig, Scheme};
use slacksim::{Benchmark, EngineKind, Simulation, SpeculationConfig, ViolationSelect};

fn run(benchmark: Benchmark, scheme: Scheme, seed: u64) -> slacksim::SimReport {
    Simulation::new(benchmark)
        .commit_target(50_000)
        .seed(seed)
        .scheme(scheme)
        .engine(EngineKind::Sequential)
        .run()
        .expect("run succeeds")
}

fn assert_identical(a: &slacksim::SimReport, b: &slacksim::SimReport, what: &str) {
    assert_eq!(a.global_cycles, b.global_cycles, "{what}: cycles");
    assert_eq!(a.committed, b.committed, "{what}: committed");
    assert_eq!(a.violations, b.violations, "{what}: violations");
    assert_eq!(a.per_core, b.per_core, "{what}: per-core");
    assert_eq!(a.uncore, b.uncore, "{what}: uncore");
    assert_eq!(a.bound_trace, b.bound_trace, "{what}: bound trace");
}

#[test]
fn same_seed_same_report_for_every_scheme() {
    let schemes = [
        Scheme::CycleByCycle,
        Scheme::BoundedSlack { bound: 16 },
        Scheme::UnboundedSlack,
        Scheme::Quantum { quantum: 50 },
        Scheme::Adaptive(AdaptiveConfig::default()),
    ];
    for scheme in schemes {
        let a = run(Benchmark::Barnes, scheme.clone(), 42);
        let b = run(Benchmark::Barnes, scheme.clone(), 42);
        assert_identical(&a, &b, scheme.name());
    }
}

#[test]
fn different_seeds_differ_under_slack() {
    let a = run(Benchmark::Barnes, Scheme::BoundedSlack { bound: 16 }, 1);
    let b = run(Benchmark::Barnes, Scheme::BoundedSlack { bound: 16 }, 2);
    // Different workload streams and scheduling: some statistic must move.
    assert!(
        a.global_cycles != b.global_cycles || a.violations != b.violations,
        "seeds 1 and 2 produced identical runs"
    );
}

#[test]
fn speculative_runs_are_deterministic_too() {
    let make = || {
        let mut sim = Simulation::new(Benchmark::Fft);
        sim.commit_target(50_000)
            .seed(7)
            .scheme(Scheme::BoundedSlack { bound: 16 })
            .engine(EngineKind::Sequential)
            .speculation(SpeculationConfig::speculative(
                2_000,
                ViolationSelect::all(),
            ));
        sim.run().expect("run succeeds")
    };
    let a = make();
    let b = make();
    assert_identical(&a, &b, "speculative");
    assert_eq!(
        a.kernel.get("rollbacks"),
        b.kernel.get("rollbacks"),
        "rollback schedule must replay identically"
    );
}

#[test]
fn cc_statistics_are_schedule_independent() {
    // Under cycle-by-cycle pacing, the burst scheduler's seed must not
    // matter at all (only the workload seed does) — so fix the workload
    // by comparing the same full seed against itself through different
    // burst settings.
    let mut a = Simulation::new(Benchmark::Lu);
    a.commit_target(40_000).seed(5).max_burst(1);
    let mut b = Simulation::new(Benchmark::Lu);
    b.commit_target(40_000).seed(5).max_burst(64);
    let ra = a.run().expect("a");
    let rb = b.run().expect("b");
    assert_identical(&ra, &rb, "CC vs burst settings");
}
