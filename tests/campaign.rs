//! Campaign-runner integration tests: the proof harness behind
//! `slacksim sweep`.
//!
//! Three properties carry the campaign story:
//!
//! * **Oversubscription honesty** — a 24-job grid on a 3-worker pool
//!   completes every job, never runs more jobs at once than it has
//!   workers, starves no worker, and produces per-job reports
//!   bit-identical to the same configurations run solo. Parallelism is
//!   a throughput trick, never a results perturbation.
//! * **Campaign-level kill-and-resume** — a SIGKILLed campaign resumes
//!   in-flight jobs from their durable checkpoints and skips settled
//!   ones, and its final aggregate is byte-identical to an
//!   uninterrupted campaign's.
//! * **Idempotent resume** — rerunning a finished campaign skips every
//!   job and leaves the aggregate bytes untouched.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use slacksim::slacksim_core::campaign::SweepSpec;
use slacksim::sweep::{run_sweep, SweepOptions};
use slacksim::{Benchmark, EngineKind, SimReport, Simulation};

/// Fresh scratch directory for one test's campaign files.
fn scratch_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "slacksim-campaign-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// The 24-point oversubscription grid: 3 schemes x 2 bounds x 1 quantum
/// x 1 core count x 2 workloads x 2 seeds.
const OVERSUB_SPEC: &str = r#"{
    "v": 1,
    "commit": 4000,
    "engine": "seq",
    "axes": {
        "scheme": ["cc", "bounded", "quantum"],
        "bound": [8, 16],
        "quantum": [50],
        "cores": [2],
        "workload": ["fft", "water"],
        "seed": [1, 2]
    }
}"#;

/// The simulated-outcome fields of a report — everything a resume or a
/// pool schedule must reproduce exactly; wall-clock and host profiling
/// are deliberately excluded.
fn outcome_of(report: &SimReport) -> impl PartialEq + std::fmt::Debug {
    (
        report.global_cycles,
        report.committed,
        report.violations,
        report.per_core.clone(),
        report.uncore.clone(),
    )
}

#[test]
fn oversubscribed_campaign_is_fair_and_bit_identical_to_solo_runs() {
    let dir = scratch_dir("oversub");
    let opts = SweepOptions {
        workers: Some(3),
        ..SweepOptions::default()
    };
    let outcome = run_sweep(Some(OVERSUB_SPEC), &dir, &opts).expect("campaign runs");

    // Every grid point settled, exactly once, in grid order.
    let spec = SweepSpec::parse(OVERSUB_SPEC).unwrap();
    let jobs = spec.expand();
    assert_eq!(jobs.len(), 24, "the grid is the 24-point product");
    assert_eq!(outcome.rows.len(), 24, "every job settled");
    assert!(
        outcome.failed.is_empty(),
        "no job failed: {:?}",
        outcome.failed
    );
    assert_eq!(outcome.skipped, 0);
    assert_eq!(outcome.resumed, 0);
    for (i, row) in outcome.rows.iter().enumerate() {
        assert_eq!(row.index, i as u64, "rows come back in grid order");
        assert_eq!(row.token, jobs[i].token());
    }

    // Backpressure: 24 jobs on 3 workers never ran more than 3 at once.
    assert_eq!(outcome.pool.per_worker_jobs.len(), 3, "pool width is 3");
    assert!(
        outcome.pool.max_concurrent <= 3,
        "oversubscribed pool ran {} jobs at once",
        outcome.pool.max_concurrent
    );

    // Fairness: all jobs ran, and no worker starved. Each worker owns an
    // 8-job deque and pops its own front first, so an empty share would
    // require peers to steal all 8 jobs before the worker's first pop.
    let counts = outcome.pool.counts();
    assert_eq!(counts.iter().sum::<usize>(), 24, "all 24 jobs executed");
    assert!(
        counts.iter().all(|&c| c >= 1),
        "a worker starved: jobs/worker = {counts:?}"
    );

    // Bit-identity: each pooled report equals the same config run solo.
    for job in &jobs {
        let pooled = outcome.reports[job.index as usize]
            .as_ref()
            .expect("fresh campaign ran every job");
        let solo = Simulation::new(Benchmark::parse(&job.workload).unwrap())
            .cores(job.cores as usize)
            .scheme(job.scheme.clone())
            .engine(EngineKind::Sequential)
            .commit_target(spec.commit)
            .seed(job.seed)
            .run()
            .expect("solo run");
        assert_eq!(
            outcome_of(pooled),
            outcome_of(&solo),
            "job {} diverged from its solo run",
            job.token()
        );
    }

    // Idempotent resume: a second invocation (spec or manifest, both
    // legal) skips everything and rewrites identical aggregate bytes.
    let csv = std::fs::read(dir.join("aggregate.csv")).expect("aggregate.csv written");
    let again = run_sweep(None, &dir, &opts).expect("resume of a finished campaign");
    assert_eq!(again.skipped, 24, "every settled job is skipped");
    assert_eq!(again.rows, outcome.rows, "rows survive the round-trip");
    assert!(again.reports.iter().all(Option::is_none), "nothing reran");
    let csv_again = std::fs::read(dir.join("aggregate.csv")).unwrap();
    assert_eq!(csv, csv_again, "aggregate bytes are reproduced exactly");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Two long cc jobs with durable checkpoints every 500 cycles: small
/// enough for debug CI, long enough that the first snapshot lands well
/// before either job finishes.
const KILL_SPEC: &str = r#"{
    "v": 1,
    "commit": 60000,
    "engine": "seq",
    "checkpoint": 500,
    "workers": 1,
    "axes": {
        "scheme": ["cc"],
        "cores": [2],
        "workload": ["fft"],
        "seed": [1, 2]
    }
}"#;

fn slacksim(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_slacksim"))
        .args(args)
        .output()
        .expect("spawn slacksim binary")
}

/// Any `cp-*` file under any job directory of the campaign.
fn any_job_checkpoint(dir: &Path) -> Option<PathBuf> {
    let jobs = std::fs::read_dir(dir.join("jobs")).ok()?;
    for jdir in jobs.flatten() {
        let Ok(entries) = std::fs::read_dir(jdir.path()) else {
            continue;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            // A cp-*.tmp is an in-flight atomic write, not yet durable.
            if name.starts_with("cp-") && !name.ends_with(".tmp") {
                return Some(entry.path());
            }
        }
    }
    None
}

#[test]
fn sigkilled_campaign_resumes_to_a_bit_identical_aggregate() {
    let base = scratch_dir("kill");
    let spec_path = base.join("sweep.json");
    std::fs::write(&spec_path, KILL_SPEC).unwrap();
    let spec = spec_path.to_str().unwrap();

    // Uninterrupted baseline campaign.
    let dir_a = base.join("uninterrupted");
    let baseline = slacksim(&["sweep", "--spec", spec, "--dir", dir_a.to_str().unwrap()]);
    assert!(
        baseline.status.success(),
        "baseline campaign exits 0: {}",
        String::from_utf8_lossy(&baseline.stderr)
    );
    let want_csv = std::fs::read(dir_a.join("aggregate.csv")).expect("baseline aggregate");
    let want_jsonl = std::fs::read(dir_a.join("aggregate.jsonl")).expect("baseline jsonl");

    // Start the same campaign elsewhere and SIGKILL it as soon as the
    // first durable job checkpoint lands (mid-first-job, by construction:
    // checkpoints arrive every 500 cycles of an ~85k-cycle run).
    let dir_b = base.join("killed");
    let mut child = Command::new(env!("CARGO_BIN_EXE_slacksim"))
        .args(["sweep", "--spec", spec, "--dir", dir_b.to_str().unwrap()])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn campaign");
    let deadline = Instant::now() + Duration::from_secs(60);
    while any_job_checkpoint(&dir_b).is_none() {
        assert!(
            Instant::now() < deadline,
            "no job checkpoint appeared within the deadline"
        );
        if child.try_wait().expect("poll child").is_some() {
            break; // finished before we could kill it — still comparable
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    let _ = child.kill();
    let _ = child.wait();

    // Resume from the manifest alone. The in-flight job restarts from
    // its newest snapshot (not cycle 0), which the runner announces.
    let resumed = slacksim(&["sweep", "--dir", dir_b.to_str().unwrap()]);
    assert!(
        resumed.status.success(),
        "resumed campaign exits 0: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    let err = String::from_utf8_lossy(&resumed.stderr);
    assert!(
        err.contains("resumed from"),
        "resume restarts from a durable checkpoint, stderr: {err:?}"
    );

    // The final artifacts are byte-identical to never having crashed.
    let got_csv = std::fs::read(dir_b.join("aggregate.csv")).expect("resumed aggregate");
    assert_eq!(got_csv, want_csv, "aggregate.csv diverged across the kill");
    let got_jsonl = std::fs::read(dir_b.join("aggregate.jsonl")).expect("resumed jsonl");
    assert_eq!(
        got_jsonl, want_jsonl,
        "aggregate.jsonl diverged across the kill"
    );

    // Settled jobs prune their checkpoints: the campaign directory holds
    // reports, not stale snapshots.
    assert!(
        any_job_checkpoint(&dir_b).is_none(),
        "settled jobs must prune their cp-* files"
    );
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn failed_jobs_do_not_sink_the_fleet() {
    // A grid where one point cannot finish: 2000 fft instructions take
    // ~4.5k cycles on 2 cores but ~8.7k on 1, so a 6500-cycle cap
    // settles the 2-core job and stops the 1-core job short of target —
    // which must surface as a per-job failure, not an aggregate row.
    let spec = r#"{
        "v": 1,
        "commit": 2000,
        "max_cycles": 6500,
        "axes": {
            "scheme": ["cc"],
            "cores": [1, 2],
            "workload": ["fft"],
            "seed": [1]
        }
    }"#;
    let dir = scratch_dir("fail");
    let opts = SweepOptions {
        workers: Some(2),
        ..SweepOptions::default()
    };
    let outcome = run_sweep(Some(spec), &dir, &opts).expect("campaign itself runs");
    assert_eq!(outcome.rows.len(), 1, "the 2-core job settles");
    assert_eq!(outcome.rows[0].cores, 2);
    assert_eq!(outcome.failed.len(), 1, "the capped 1-core job fails");
    assert!(
        outcome.failed[0].0.contains("-c1-"),
        "the failure names the capped job: {:?}",
        outcome.failed
    );
    assert!(
        outcome.failed[0].1.contains("max_cycles"),
        "the failure names the cap: {:?}",
        outcome.failed
    );
    // No CSV on a partial pass: the streamed JSONL is the partial record.
    assert!(
        !dir.join("aggregate.csv").exists(),
        "no final aggregate until the grid is green"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn panicking_job_does_not_sink_the_fleet() {
    // Regression: a panic inside one job used to unwind its worker
    // thread, poisoning the shared aggregate.jsonl mutex and turning
    // every subsequent settle into a second panic — one bad job sank
    // the whole fleet. The panic must now be caught, recorded as that
    // job's failure, and leave the remaining jobs green.
    let base = scratch_dir("panic");
    let spec = r#"{
        "v": 1,
        "commit": 2000,
        "axes": {
            "scheme": ["cc"],
            "cores": [2],
            "workload": ["fft"],
            "seed": [1, 2, 3]
        }
    }"#;
    let spec_path = base.join("sweep.json");
    std::fs::write(&spec_path, spec).unwrap();
    let camp = base.join("camp");
    let jobs = SweepSpec::parse(spec).unwrap().expand();
    assert_eq!(jobs.len(), 3);
    let victim = jobs[1].token();

    // SLACKSIM_SWEEP_PANIC_TOKEN is the test seam in `execute_job`: the
    // named job panics mid-execution, on a pool worker, for real.
    let out = Command::new(env!("CARGO_BIN_EXE_slacksim"))
        .args([
            "sweep",
            "--spec",
            spec_path.to_str().unwrap(),
            "--dir",
            camp.to_str().unwrap(),
            "--workers",
            "2",
        ])
        .env("SLACKSIM_SWEEP_PANIC_TOKEN", &victim)
        .output()
        .expect("spawn campaign");
    assert!(
        !out.status.success(),
        "a failed job surfaces as a non-zero campaign exit"
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("job panicked"),
        "the failure records the panic message: {err:?}"
    );
    assert!(err.contains(&victim), "the failure names the job: {err:?}");
    assert!(
        err.contains("rerun"),
        "the runner offers the retry path: {err:?}"
    );

    // The other two jobs settled durably despite sharing the fleet.
    for job in [&jobs[0], &jobs[2]] {
        assert!(
            camp.join("jobs")
                .join(job.token())
                .join("report.json")
                .exists(),
            "job {} must settle despite the panicking peer",
            job.token()
        );
    }
    assert!(
        !camp.join("aggregate.csv").exists(),
        "no final aggregate until the grid is green"
    );

    // A plain rerun (no poison seam) retries only the failed job and
    // finishes the campaign green.
    let retry = slacksim(&["sweep", "--dir", camp.to_str().unwrap()]);
    assert!(
        retry.status.success(),
        "retry exits 0: {}",
        String::from_utf8_lossy(&retry.stderr)
    );
    let csv = std::fs::read_to_string(camp.join("aggregate.csv")).expect("final aggregate");
    assert_eq!(csv.lines().count(), 4, "header plus all three rows: {csv}");
    assert!(csv.contains(&victim), "the retried job's row is present");
    let _ = std::fs::remove_dir_all(&base);
}
