//! Figure 3: bus and cache-map violation rates as the slack bound grows.
//!
//! Paper shape: bus violations are at least an order of magnitude more
//! frequent than map violations; bus rates grow with the bound and
//! plateau; map rates are negligible at small bounds and grow later.
//! Measured on the deterministic engine (reproducible 8-context host
//! model).

use slacksim::scheme::Scheme;
use slacksim::{Benchmark, ViolationKind};

use crate::runner::run_sequential;
use crate::scale::Scale;
use crate::table::Table;

/// The slack bounds swept on the X axis.
pub const BOUNDS: [u64; 12] = [1, 2, 4, 6, 8, 10, 20, 40, 60, 80, 100, 200];

/// One measured point of the figure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig3Point {
    /// The benchmark measured.
    pub benchmark: Benchmark,
    /// Slack bound in cycles.
    pub bound: u64,
    /// Bus violations per simulated cycle.
    pub bus_rate: f64,
    /// Map violations per simulated cycle.
    pub map_rate: f64,
}

/// Runs the full sweep.
pub fn measure(scale: &Scale) -> Vec<Fig3Point> {
    let mut points = Vec::new();
    for benchmark in Benchmark::ALL {
        for bound in BOUNDS {
            let r = run_sequential(scale, benchmark, Scheme::BoundedSlack { bound });
            points.push(Fig3Point {
                benchmark,
                bound,
                bus_rate: r.violations.rate(ViolationKind::Bus, r.global_cycles),
                map_rate: r.violations.rate(ViolationKind::Map, r.global_cycles),
            });
            eprintln!(
                "fig3: {benchmark} S{bound}: bus={:.4}% map={:.5}%",
                100.0 * points.last().unwrap().bus_rate,
                100.0 * points.last().unwrap().map_rate,
            );
        }
    }
    points
}

/// Renders the two panels of the figure as tables.
pub fn render(points: &[Fig3Point]) -> (Table, Table) {
    let mut bus = Table::new("Figure 3(a). Bus violation rate vs slack bound (% per cycle).");
    let mut map = Table::new("Figure 3(b). Cache-map violation rate vs slack bound (% per cycle).");
    let mut headers = vec!["slack bound".to_string()];
    headers.extend(Benchmark::ALL.iter().map(|b| b.name().to_string()));
    bus.headers(headers.clone());
    map.headers(headers);
    for bound in BOUNDS {
        let mut bus_row = vec![format!("S{bound}")];
        let mut map_row = vec![format!("S{bound}")];
        for benchmark in Benchmark::ALL {
            let p = points
                .iter()
                .find(|p| p.benchmark == benchmark && p.bound == bound)
                .expect("full sweep");
            bus_row.push(format!("{:.4}", p.bus_rate * 100.0));
            map_row.push(format!("{:.5}", p.map_rate * 100.0));
        }
        bus.row(bus_row);
        map.row(map_row);
    }
    bus.note("deterministic engine; rates = violations / simulated cycles");
    map.note("map violations are per-line reorderings of the global cache status map");
    (bus, map)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_holds_at_small_scale() {
        let scale = Scale {
            commit: 60_000,
            seed: 1,
            cores: 8,
        };
        let mut points = Vec::new();
        for bound in [1u64, 8, 100] {
            let r = run_sequential(&scale, Benchmark::Fft, Scheme::BoundedSlack { bound });
            points.push((
                bound,
                r.violations.rate(ViolationKind::Bus, r.global_cycles),
                r.violations.rate(ViolationKind::Map, r.global_cycles),
            ));
        }
        // S1 is violation-free; rates grow with the bound; bus >> map.
        assert_eq!(points[0].1, 0.0);
        assert!(points[1].1 > 0.0);
        assert!(points[2].1 >= points[1].1);
        assert!(points[2].1 > 5.0 * points[2].2, "bus must dominate map");
    }

    #[test]
    fn render_produces_full_grid() {
        let points: Vec<Fig3Point> = Benchmark::ALL
            .iter()
            .flat_map(|&benchmark| {
                BOUNDS.iter().map(move |&bound| Fig3Point {
                    benchmark,
                    bound,
                    bus_rate: 0.01,
                    map_rate: 0.001,
                })
            })
            .collect();
        let (bus, map) = render(&points);
        assert_eq!(bus.len(), BOUNDS.len());
        assert_eq!(map.len(), BOUNDS.len());
    }
}
