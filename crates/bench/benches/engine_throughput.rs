//! Criterion bench: simulated-cycles-per-second of the engines under the
//! main slack schemes (the raw speed behind Figure 4's Y axis).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use slacksim::scheme::Scheme;
use slacksim::{Benchmark, EngineKind, Simulation};

fn run(engine: EngineKind, scheme: Scheme) {
    let report = Simulation::new(Benchmark::Fft)
        .cores(8)
        .commit_target(40_000)
        .seed(1)
        .scheme(scheme)
        .engine(engine)
        .run()
        .expect("bench run");
    assert!(report.committed >= 40_000);
}

fn engine_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_throughput");
    group.sample_size(10);
    for (name, scheme) in [
        ("cycle-by-cycle", Scheme::CycleByCycle),
        ("bounded-8", Scheme::BoundedSlack { bound: 8 }),
        ("unbounded", Scheme::UnboundedSlack),
        ("quantum-50", Scheme::Quantum { quantum: 50 }),
    ] {
        group.bench_with_input(
            BenchmarkId::new("sequential", name),
            &scheme,
            |b, scheme| b.iter(|| run(EngineKind::Sequential, scheme.clone())),
        );
    }
    // The threaded engine is dominated by synchronisation on small hosts;
    // bench only the scheme extremes.
    for (name, scheme) in [
        ("cycle-by-cycle", Scheme::CycleByCycle),
        ("unbounded", Scheme::UnboundedSlack),
    ] {
        group.bench_with_input(BenchmarkId::new("threaded", name), &scheme, |b, scheme| {
            b.iter(|| run(EngineKind::Threaded, scheme.clone()))
        });
    }
    group.finish();
}

criterion_group!(benches, engine_throughput);
criterion_main!(benches);
