//! `slacksim` — command-line front end: run one configured slack
//! simulation and print the report.
//!
//! ```text
//! slacksim [--benchmark barnes|fft|lu|water] [--scheme cc|bounded|unbounded|quantum|adaptive|p2p]
//!          [--bound N] [--quantum N] [--target PCT] [--band PCT]
//!          [--engine seq|threaded] [--cores N] [--commit N] [--seed N]
//!          [--checkpoint N] [--checkpoint-mode full|delta] [--rollback all|map|none]
//!          [--save-state DIR] [--resume FILE]
//!          [--verbose] [--trace OUT.json] [--metrics OUT.csv] [--sample-every CYCLES]
//! ```

use slacksim::scheme::{AdaptiveConfig, Scheme};
use slacksim::{
    Benchmark, CheckpointMode, EngineError, EngineKind, ObsConfig, Simulation, SpeculationConfig,
    ViolationKind, ViolationSelect,
};

/// Flags that take a value in the following argument.
const VALUE_FLAGS: &[&str] = &[
    "--benchmark",
    "--scheme",
    "--bound",
    "--quantum",
    "--target",
    "--band",
    "--period",
    "--engine",
    "--cores",
    "--commit",
    "--seed",
    "--checkpoint",
    "--checkpoint-mode",
    "--rollback",
    "--trace",
    "--metrics",
    "--sample-every",
    "--save-state",
    "--resume",
];

/// Flags that stand alone.
const BOOL_FLAGS: &[&str] = &["--verbose", "--help", "-h"];

struct Args(Vec<String>);

impl Args {
    /// Rejects unknown flags, stray positional arguments and value flags
    /// missing their value — a typo must fail loudly, not silently fall
    /// back to a default configuration.
    fn validate(&self) {
        let mut i = 0;
        while i < self.0.len() {
            let a = self.0[i].as_str();
            if BOOL_FLAGS.contains(&a) {
                i += 1;
            } else if VALUE_FLAGS.contains(&a) {
                if i + 1 >= self.0.len() {
                    usage_error(&format!("flag '{a}' expects a value"));
                }
                i += 2;
            } else {
                usage_error(&format!("unknown argument '{a}'"));
            }
        }
    }

    fn value(&self, flag: &str) -> Option<&str> {
        self.0
            .iter()
            .position(|a| a == flag)
            .and_then(|i| self.0.get(i + 1))
            .map(String::as_str)
    }

    fn parsed<T: std::str::FromStr>(&self, flag: &str, default: T) -> T {
        match self.value(flag) {
            None => default,
            Some(v) => v
                .parse()
                .unwrap_or_else(|_| usage_error(&format!("invalid value '{v}' for {flag}"))),
        }
    }

    /// Like [`parsed`](Args::parsed) for cycle counts and other quantities
    /// where zero is degenerate: a zero checkpoint interval would commit a
    /// checkpoint every cycle boundary check, a zero slack bound is
    /// cycle-by-cycle in disguise, and a zero sampling period divides by
    /// zero downstream. All are rejected here instead.
    fn parsed_nonzero(&self, flag: &str, default: u64) -> u64 {
        let v: u64 = self.parsed(flag, default);
        if v == 0 {
            usage_error(&format!("{flag} must be at least 1 (got 0)"));
        }
        v
    }

    fn has(&self, flag: &str) -> bool {
        self.0.iter().any(|a| a == flag)
    }
}

/// Prints a usage error and exits non-zero.
fn usage_error(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("run `slacksim --help` for usage");
    std::process::exit(2);
}

fn main() {
    let args = Args(std::env::args().skip(1).collect());
    if args.has("--help") || args.has("-h") {
        println!("{}", HELP);
        return;
    }
    args.validate();

    let benchmark = match args.value("--benchmark") {
        None => Benchmark::Fft,
        Some(name) => Benchmark::parse(name).unwrap_or_else(|| {
            usage_error(&format!(
                "unknown benchmark '{name}' (expected barnes|fft|lu|water)"
            ))
        }),
    };
    let scheme = match args.value("--scheme").unwrap_or("cc") {
        "cc" | "cycle" => Scheme::CycleByCycle,
        "bounded" => Scheme::BoundedSlack {
            bound: args.parsed_nonzero("--bound", 8),
        },
        "unbounded" | "su" => Scheme::UnboundedSlack,
        "quantum" => Scheme::Quantum {
            quantum: args.parsed_nonzero("--quantum", 50),
        },
        "adaptive" => {
            let target: f64 = args.parsed("--target", 0.2);
            if !target.is_finite() || target <= 0.0 {
                usage_error(&format!(
                    "--target must be a finite percentage > 0 (got {target})"
                ));
            }
            let band: f64 = args.parsed("--band", 5.0);
            if !band.is_finite() || band < 0.0 {
                usage_error(&format!(
                    "--band must be a finite percentage >= 0 (got {band})"
                ));
            }
            Scheme::Adaptive(AdaptiveConfig::percent(target, band))
        }
        "p2p" => Scheme::LaxP2p {
            lead: args.parsed_nonzero("--bound", 8),
            period: args.parsed_nonzero("--period", 500),
            seed: args.parsed("--seed", 1),
        },
        other => usage_error(&format!(
            "unknown scheme '{other}' (expected cc|bounded|unbounded|quantum|adaptive|p2p)"
        )),
    };
    let engine = match args.value("--engine").unwrap_or("seq") {
        "seq" | "sequential" => EngineKind::Sequential,
        "threaded" | "thr" => EngineKind::Threaded,
        other => usage_error(&format!("unknown engine '{other}' (expected seq|threaded)")),
    };

    let trace_path = args.value("--trace").map(str::to_string);
    let metrics_path = args.value("--metrics").map(str::to_string);

    let mut sim = Simulation::new(benchmark);
    sim.scheme(scheme.clone())
        .engine(engine)
        .cores(args.parsed("--cores", 8))
        .commit_target(args.parsed("--commit", 500_000))
        .seed(args.parsed("--seed", 1));
    let select = match args.value("--rollback") {
        None | Some("none") => ViolationSelect::none(),
        Some("all") => ViolationSelect::all(),
        Some("map") => ViolationSelect::only(&[ViolationKind::Map]),
        Some(other) => usage_error(&format!(
            "unknown rollback selection '{other}' (expected all|map|none)"
        )),
    };
    let cp_mode = match args.value("--checkpoint-mode") {
        None => CheckpointMode::Full,
        Some(name) => CheckpointMode::parse(name).unwrap_or_else(|| {
            usage_error(&format!(
                "unknown checkpoint mode '{name}' (expected full|delta)"
            ))
        }),
    };
    if args.has("--checkpoint") {
        let interval = args.parsed_nonzero("--checkpoint", 1);
        sim.speculation(SpeculationConfig::speculative(interval, select).with_mode(cp_mode));
    } else if args.has("--rollback") {
        usage_error("--rollback requires --checkpoint INTERVAL");
    } else if args.has("--checkpoint-mode") {
        usage_error("--checkpoint-mode requires --checkpoint INTERVAL");
    } else if args.has("--save-state") {
        usage_error("--save-state requires --checkpoint INTERVAL");
    }
    if let Some(dir) = args.value("--save-state") {
        sim.save_state(dir);
    }
    if let Some(path) = args.value("--resume") {
        sim.resume(path);
    }
    if trace_path.is_some() || metrics_path.is_some() || args.has("--sample-every") {
        sim.observability(
            ObsConfig::default().with_sample_every(args.parsed_nonzero("--sample-every", 1024)),
        );
    }

    eprintln!("running {benchmark} under {} ...", scheme.name());
    match sim.run() {
        Ok(report) => {
            println!("{report}");
            if let Some(obs) = &report.obs {
                if let Some(path) = &trace_path {
                    if let Err(e) = std::fs::write(path, obs.chrome_trace_json()) {
                        eprintln!("failed to write trace {path}: {e}");
                        std::process::exit(1);
                    }
                    eprintln!("trace written to {path} (open in https://ui.perfetto.dev)");
                }
                if let Some(path) = &metrics_path {
                    if let Err(e) = std::fs::write(path, obs.metrics_csv()) {
                        eprintln!("failed to write metrics {path}: {e}");
                        std::process::exit(1);
                    }
                    eprintln!("metrics written to {path}");
                }
            }
            if args.has("--verbose") {
                if let Some(obs) = &report.obs {
                    println!("\n{}", obs.summary().trim_end());
                }
                println!("\nuncore counters:\n{}", report.uncore);
                println!("\nkernel counters:\n{}", report.kernel);
                for (i, core) in report.per_core.iter().enumerate() {
                    println!("\ncore {i}:\n{core}");
                }
            }
        }
        Err(e @ (EngineError::Resume(_) | EngineError::Persist(_))) => {
            // Bad snapshot, mismatched configuration or unusable save
            // directory: a usage-class failure, same exit code as flag
            // validation so scripts can tell it from a simulation fault.
            eprintln!("error: {e}");
            eprintln!("run `slacksim --help` for usage");
            std::process::exit(2);
        }
        Err(e) => {
            eprintln!("simulation failed: {e}");
            std::process::exit(1);
        }
    }
}

const HELP: &str = "\
slacksim — run one slack simulation of the paper's 8-core CMP

USAGE:
  slacksim [--benchmark barnes|fft|lu|water] [--scheme cc|bounded|unbounded|quantum|adaptive|p2p]
           [--bound N] [--quantum N] [--target PCT] [--band PCT] [--period N]
           [--engine seq|threaded] [--cores N] [--commit N] [--seed N]
           [--checkpoint INTERVAL] [--checkpoint-mode full|delta]
           [--rollback all|map|none] [--save-state DIR] [--resume FILE]
           [--verbose]
           [--trace OUT.json] [--metrics OUT.csv] [--sample-every CYCLES]

SPECULATION:
  --checkpoint N        take a checkpoint every N global cycles
  --checkpoint-mode M   how checkpoints are captured and restored
                        (requires --checkpoint): 'full' clones every model
                        per checkpoint, 'delta' captures only state dirtied
                        since the previous checkpoint and rolls back by
                        reverse-applying onto the standing base; both modes
                        produce bit-identical simulation results
  --rollback SEL        violation kinds that trigger a rollback
                        (all|map|none; default none = checkpoint-only)

DURABLE STATE:
  --save-state DIR      persist every committed checkpoint to DIR as a
                        versioned, checksummed snapshot file (cp-NNNNNNNN,
                        written atomically, older files pruned); requires
                        --checkpoint
  --resume FILE         restore a snapshot written by --save-state and
                        continue the run from it; the snapshot's config
                        fingerprint (benchmark/scheme/cores/seed/checkpoint
                        mode) must match the flags given here, otherwise
                        slacksim refuses with exit code 2

OBSERVABILITY:
  --trace OUT.json      record a per-core timeline and write it as Chrome
                        Trace Event Format JSON (open in chrome://tracing or
                        https://ui.perfetto.dev): run/wait/replay spans per
                        core, violation instants, slack-bound and queue-depth
                        counter tracks
  --metrics OUT.csv     dump sampled gauge time series and histogram
                        summaries as long-format CSV (metric,cycle,value)
  --sample-every N      metrics sampling cadence in global cycles
                        (default 1024); also enables observability on its own
  --verbose             additionally prints the observability summary when
                        tracing/metrics are enabled

EXAMPLES:
  slacksim --benchmark barnes --scheme unbounded --engine threaded
  slacksim --scheme adaptive --target 0.2 --band 5
  slacksim --scheme bounded --bound 16 --checkpoint 5000 --rollback all --verbose
  slacksim --benchmark fft --scheme adaptive --engine threaded --checkpoint 2000 \\
           --trace /tmp/t.json --metrics /tmp/m.csv
  slacksim --cores 2 --checkpoint 1000 --save-state /tmp/cps
  slacksim --cores 2 --checkpoint 1000 --resume /tmp/cps/cp-00000004";
