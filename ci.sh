#!/usr/bin/env bash
# Offline CI gate: build, test, lint, format. No network access required.
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

echo "==> cargo build --release"
cargo build --workspace --release --offline

echo "==> cargo test -q"
cargo test --workspace -q --offline

echo "==> cargo test -q --release"
cargo test --workspace -q --release --offline

echo "==> conformance smoke (adversarial schedules, bounded seeds)"
# Bounded-time schedule-fuzzing pass: the virtual-scheduler matrix from
# crates/conformance runs in release with a pinned seed count per
# adversarial schedule so wall time stays inside the CI budget. Raise
# SLACKSIM_CONFORMANCE_SEEDS locally for a deeper exploration.
SLACKSIM_CONFORMANCE_SEEDS=4 \
    cargo test -p slacksim-conformance -q --release --offline

echo "==> delta-checkpoint smoke (bounded slack, full-vs-delta oracle + CLI)"
# The delta-vs-full state-equality oracle (DESIGN §11-§12) on the
# deterministic engine — delta-restored state must be bit-identical to a
# full-clone restore across the speculation matrix — plus one end-to-end
# threaded delta-mode run through the release binary under a greedy
# (bounded) scheme.
cargo test -p slacksim-conformance -q --release --offline \
    --test conformance delta_checkpoints_match_full_clones_exactly
./target/release/slacksim --scheme bounded --bound 16 --engine threaded \
    --commit 20000 --checkpoint 2000 --checkpoint-mode delta --rollback all \
    > /dev/null

echo "==> kill-and-resume smoke (durable snapshots, SIGKILL mid-run)"
# Crash-safety proof on the release binary (DESIGN §13): a threaded
# cycle-by-cycle run persisting checkpoints is SIGKILLed as soon as the
# first snapshot lands, resumed from the surviving cp-* file, and must
# report the exact simulated outcome of an uninterrupted baseline.
# The in-process twin of this check (both engines, refusal paths) runs
# in tests/persist_resume.rs; this stage exercises the shipped binary
# end to end, kill included.
cps_dir="$(mktemp -d /tmp/slacksim-ci-cps.XXXXXX)"
resume_flags=(--scheme cc --engine threaded --cores 2 --commit 200000 --checkpoint 700)
baseline="$(./target/release/slacksim "${resume_flags[@]}" \
    | grep -E '^(execution time|committed|violations)')"
./target/release/slacksim "${resume_flags[@]}" --save-state "$cps_dir" \
    > /dev/null 2>&1 &
victim=$!
for _ in $(seq 1 2000); do
    compgen -G "$cps_dir/cp-*" > /dev/null && break
    kill -0 "$victim" 2> /dev/null || break
    sleep 0.005
done
kill -KILL "$victim" 2> /dev/null || true
wait "$victim" 2> /dev/null || true
snapshot="$(ls "$cps_dir"/cp-* | sort | tail -n 1)"
resumed="$(./target/release/slacksim "${resume_flags[@]}" --resume "$snapshot" \
    | grep -E '^(execution time|committed|violations)')"
[ "$baseline" = "$resumed" ] || {
    echo "ci: resumed report diverged from uninterrupted baseline" >&2
    printf 'baseline:\n%s\nresumed:\n%s\n' "$baseline" "$resumed" >&2
    exit 1
}
rm -rf "$cps_dir"

echo "==> bench smoke (engine_throughput, short run, checked against baseline)"
# Short run into a scratch path, compared against the committed
# BENCH_threaded.json: every engine/scheme row must keep at least 0.25x
# the committed median throughput or the bench exits non-zero. The
# tolerance is deliberately generous — the smoke run's commit target is
# ~7x smaller than the committed full run's, so fixed startup costs weigh
# more and shared CI hosts add noise — but it still catches the silent
# multi-x regressions that previously drifted past this stage unnoticed.
smoke_out="$(mktemp /tmp/BENCH_threaded_smoke.XXXXXX.json)"
# Paths must be absolute: cargo bench runs the binary with the package
# directory as its working directory, not the repo root.
SLACKSIM_BENCH_SMOKE=1 SLACKSIM_BENCH_OUT="$smoke_out" \
SLACKSIM_BENCH_BASELINE="$PWD/BENCH_threaded.json" SLACKSIM_BENCH_TOLERANCE=0.25 \
    cargo bench -p slacksim-bench --bench engine_throughput --offline
test -s "$smoke_out" || { echo "ci: bench smoke produced no output" >&2; exit 1; }
rm -f "$smoke_out"

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "ci: all green"
