#!/usr/bin/env bash
# Offline CI gate: build, test, lint, format. No network access required.
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

echo "==> cargo build --release"
cargo build --workspace --release --offline

echo "==> cargo test -q"
cargo test --workspace -q --offline

echo "==> cargo test -q --release"
cargo test --workspace -q --release --offline

echo "==> conformance smoke (adversarial schedules, bounded seeds)"
# Bounded-time schedule-fuzzing pass: the virtual-scheduler matrix from
# crates/conformance runs in release with a pinned seed count per
# adversarial schedule so wall time stays inside the CI budget. Raise
# SLACKSIM_CONFORMANCE_SEEDS locally for a deeper exploration.
SLACKSIM_CONFORMANCE_SEEDS=4 \
    cargo test -p slacksim-conformance -q --release --offline

echo "==> bench smoke (engine_throughput, short run)"
# Short run into a scratch path (the committed BENCH_threaded.json holds
# full-run numbers). The bench validates its own emission with the
# in-tree obs::json parser before writing; here we assert the artifact
# landed and is non-empty.
smoke_out="$(mktemp /tmp/BENCH_threaded_smoke.XXXXXX.json)"
SLACKSIM_BENCH_SMOKE=1 SLACKSIM_BENCH_OUT="$smoke_out" \
    cargo bench -p slacksim-bench --bench engine_throughput --offline
test -s "$smoke_out" || { echo "ci: bench smoke produced no output" >&2; exit 1; }
rm -f "$smoke_out"

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "ci: all green"
