//! The campaign runner: executes a sweep-spec grid as a fleet of
//! [`Simulation`] jobs on a work-stealing host pool.
//!
//! This is the target-aware half of the campaign subsystem. The
//! target-agnostic half — spec parsing, grid expansion, the pool, the
//! heartbeats and the artifact formats — lives in
//! [`slacksim_core::campaign`]; this module wires each expanded
//! [`Job`] to a concrete [`Simulation`] with durable per-job
//! checkpoints and assembles the campaign directory:
//!
//! ```text
//! <dir>/manifest.json        grid identity (written once, atomically)
//! <dir>/jobs/<token>/        per-job cp-NNNNNNNN checkpoints + report.json
//! <dir>/aggregate.jsonl      streaming aggregate (one row as each job settles)
//! <dir>/aggregate.csv        final aggregate (grid order, atomically written)
//! ```
//!
//! Crash safety is compositional: each job's durable checkpoints ride
//! the existing `--save-state` persist layer, its finished `report.json`
//! is written atomically *before* its checkpoints are pruned, and the
//! streaming aggregate is rebuilt on resume. A SIGKILLed campaign
//! therefore resumes every in-flight job from its newest checkpoint and
//! skips every settled job — the final aggregate is byte-identical to an
//! uninterrupted campaign's (enforced by `tests/campaign.rs`).

use std::fmt;
use std::fs::File;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};

use slacksim_core::campaign::live as campaign_live;
use slacksim_core::campaign::{
    render_aggregate_csv, run_jobs, CampaignStats, Job, JobRow, Manifest, PoolOutcome, SpecError,
    SweepSpec,
};
use slacksim_core::obs::LiveConfig;
use slacksim_core::persist;
use slacksim_core::sched::SchedRef;
use slacksim_core::speculative::{SpeculationConfig, ViolationSelect};
use slacksim_core::stats::SimReport;
use slacksim_workloads::Benchmark;

use crate::{EngineKind, Simulation, UncoreKind};

/// Workload tokens [`Benchmark::parse`] accepts, for error messages.
pub const WORKLOAD_TOKENS: &str = "barnes|fft|lu|water";

/// Everything that can stop a campaign before any job runs. All
/// variants are usage-class errors (the CLI maps them to exit 2);
/// individual job failures are reported in [`SweepOutcome::failed`]
/// instead, so one bad grid point cannot sink the fleet.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepError {
    /// The spec document failed to parse or validate.
    Spec(SpecError),
    /// No spec was given and the campaign directory has no manifest to
    /// resume from.
    MissingSpec(PathBuf),
    /// A spec was given, but the directory's manifest fingerprints a
    /// different grid.
    SpecMismatch {
        /// The campaign directory.
        dir: PathBuf,
    },
    /// The directory holds a manifest this build cannot read.
    Manifest(String),
    /// A workload axis value the target does not provide.
    UnknownWorkload(String),
    /// Campaign-directory I/O failed (manifest or aggregate writes).
    Io(String),
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::Spec(e) => write!(f, "{e}"),
            SweepError::MissingSpec(dir) => write!(
                f,
                "no sweep spec given and {} holds no campaign manifest to resume \
                 (start a campaign with --spec FILE)",
                dir.join("manifest.json").display()
            ),
            SweepError::SpecMismatch { dir } => write!(
                f,
                "the given spec does not match the campaign recorded in {} \
                 (resume with --dir alone, or point --dir at a fresh directory)",
                dir.join("manifest.json").display()
            ),
            SweepError::Manifest(e) => write!(f, "{e}"),
            SweepError::UnknownWorkload(w) => {
                write!(
                    f,
                    "unknown workload '{w}' in axis (expected {WORKLOAD_TOKENS})"
                )
            }
            SweepError::Io(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SweepError {}

impl From<SpecError> for SweepError {
    fn from(e: SpecError) -> Self {
        SweepError::Spec(e)
    }
}

/// Host-side knobs of one `run_sweep` invocation. None of these affect
/// any job's simulated outcome — they are deliberately outside the
/// manifest fingerprint, so a campaign may be resumed with a different
/// worker count or telemetry setup.
#[derive(Debug, Clone, Default)]
pub struct SweepOptions {
    /// Worker-pool width; `None` falls back to the spec's `workers`
    /// field, then to host parallelism.
    pub workers: Option<usize>,
    /// Campaign heartbeat sinks; `None` emits nothing.
    pub live: Option<LiveConfig>,
    /// Host scheduler for the pool's wait seam (conformance runs install
    /// a virtual one; production keeps the native default).
    pub sched: Option<SchedRef>,
}

/// What one `run_sweep` invocation did.
#[derive(Debug)]
pub struct SweepOutcome {
    /// Settled rows (skipped + newly finished), in grid order. Failed
    /// jobs have no row.
    pub rows: Vec<JobRow>,
    /// Full reports of jobs *this* invocation ran, indexed by grid
    /// index; `None` for jobs skipped as already settled (their rows
    /// come from disk) and for failed jobs.
    pub reports: Vec<Option<SimReport>>,
    /// Jobs-per-worker counts and steal schedule from the pool.
    pub pool: PoolOutcome,
    /// Jobs resumed from a durable checkpoint instead of starting fresh.
    pub resumed: u64,
    /// Jobs skipped because their `report.json` already existed.
    pub skipped: u64,
    /// Terminal job failures as `(token, error)` pairs, in grid order.
    pub failed: Vec<(String, String)>,
}

/// Runs (or resumes) the campaign in `dir`.
///
/// With `spec_src`, starts a fresh campaign (or resumes one whose
/// manifest fingerprints the same grid). Without it, resumes from the
/// manifest already in `dir`.
///
/// # Errors
///
/// Returns [`SweepError`] for spec/manifest/setup problems; job
/// failures are collected in [`SweepOutcome::failed`] instead.
pub fn run_sweep(
    spec_src: Option<&str>,
    dir: &Path,
    opts: &SweepOptions,
) -> Result<SweepOutcome, SweepError> {
    let manifest_path = dir.join("manifest.json");
    let existing = match std::fs::read_to_string(&manifest_path) {
        Ok(src) => Some(Manifest::parse(&src).map_err(SweepError::Manifest)?),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
        Err(e) => {
            return Err(SweepError::Io(format!(
                "cannot read {}: {e}",
                manifest_path.display()
            )))
        }
    };

    let (spec, spec_source) = match (spec_src, &existing) {
        (Some(src), Some(manifest)) => {
            let spec = SweepSpec::parse(src)?;
            if spec.canonical() != manifest.canonical {
                return Err(SweepError::SpecMismatch {
                    dir: dir.to_path_buf(),
                });
            }
            (spec, src.to_string())
        }
        (Some(src), None) => (SweepSpec::parse(src)?, src.to_string()),
        (None, Some(manifest)) => (
            SweepSpec::parse(&manifest.spec_source).map_err(|e| {
                SweepError::Manifest(format!("manifest spec no longer parses: {e}"))
            })?,
            manifest.spec_source.clone(),
        ),
        (None, None) => return Err(SweepError::MissingSpec(dir.to_path_buf())),
    };

    // Workload names are target vocabulary, so the target-agnostic spec
    // parser cannot check them; refuse here, before any directory write.
    for name in &spec.axes.workloads {
        if Benchmark::parse(name).is_none() {
            return Err(SweepError::UnknownWorkload(name.clone()));
        }
    }

    let jobs = spec.expand();
    std::fs::create_dir_all(dir.join("jobs"))
        .map_err(|e| SweepError::Io(format!("cannot create {}: {e}", dir.display())))?;
    if existing.is_none() {
        let manifest = Manifest {
            total: jobs.len() as u64,
            canonical: spec.canonical(),
            spec_source,
        };
        persist::write_atomic(&manifest_path, manifest.render().as_bytes())
            .map_err(|e| SweepError::Io(format!("cannot write campaign manifest: {e}")))?;
    }

    // Partition the grid: jobs with a finished report on disk are
    // settled (their rows are reused verbatim); the rest go to the pool.
    let mut settled_rows: Vec<JobRow> = Vec::new();
    let mut pending: Vec<Job> = Vec::new();
    for job in jobs {
        match read_finished_report(dir, &job) {
            Some(row) => settled_rows.push(row),
            None => pending.push(job),
        }
    }

    let stats = Arc::new(CampaignStats::new());
    stats.total.store(
        (settled_rows.len() + pending.len()) as u64,
        Ordering::Relaxed,
    );
    stats
        .skipped
        .store(settled_rows.len() as u64, Ordering::Relaxed);
    let live = opts
        .live
        .clone()
        .map(|cfg| campaign_live::spawn(cfg, Arc::clone(&stats)));

    // Rebuild the streaming aggregate from scratch: settled rows first
    // (grid order), then one appended line per job as it finishes. A
    // torn line from a killed predecessor never survives the rebuild.
    let jsonl_path = dir.join("aggregate.jsonl");
    let jsonl = File::create(&jsonl_path)
        .map_err(|e| SweepError::Io(format!("cannot create {}: {e}", jsonl_path.display())))?;
    let jsonl = Mutex::new(jsonl);
    for row in &settled_rows {
        append_jsonl(&jsonl, &row.render_json());
    }

    let workers = opts
        .workers
        .or(spec.workers.map(|w| w as usize))
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        });
    let sched = opts.sched.clone().unwrap_or_default();
    let total = settled_rows.len() + pending.len();

    let exec = |_worker: usize, _idx: usize, job: Job| -> JobResult {
        stats.job_started();
        // A panicking job is a terminal failure of that grid point only:
        // catch it here so the pool worker survives and every other job
        // still settles. (Without this the unwind would poison shared
        // state and take the whole fleet down with exit-101 noise.)
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            execute_job(dir, &spec, &job, &stats, &jsonl)
        }))
        .unwrap_or_else(|panic| Err(format!("job panicked: {}", panic_message(&panic))));
        stats.job_finished(outcome.is_ok());
        JobResult { job, outcome }
    };
    let (results, pool) = run_jobs(pending, workers, &sched, exec);

    if let Some(live) = live {
        live.finish();
    }

    let mut rows = settled_rows;
    let mut reports: Vec<Option<SimReport>> = (0..total).map(|_| None).collect();
    let mut failed: Vec<(String, String)> = Vec::new();
    let mut ordered: Vec<JobResult> = results;
    ordered.sort_by_key(|r| r.job.index);
    for result in ordered {
        match result.outcome {
            Ok((row, report)) => {
                reports[row.index as usize] = Some(report);
                rows.push(row);
            }
            Err(e) => failed.push((result.job.token(), e)),
        }
    }
    rows.sort_by_key(|r| r.index);

    // The final aggregate is only meaningful when the whole grid
    // settled; with failures present the streamed JSONL remains the
    // (partial) record and the stale CSV question never arises because
    // no CSV is written until a fully-green pass.
    if failed.is_empty() {
        let csv_path = dir.join("aggregate.csv");
        persist::write_atomic(&csv_path, render_aggregate_csv(&rows).as_bytes())
            .map_err(|e| SweepError::Io(format!("cannot write {}: {e}", csv_path.display())))?;
    }

    Ok(SweepOutcome {
        rows,
        reports,
        pool,
        resumed: stats.resumed.load(Ordering::Relaxed),
        skipped: stats.skipped.load(Ordering::Relaxed),
        failed,
    })
}

/// One pool result: the job plus its row/report or terminal error.
struct JobResult {
    job: Job,
    outcome: Result<(JobRow, SimReport), String>,
}

/// Extracts the human-readable message from a caught panic payload
/// (`panic!` carries `&str` or `String`; anything else is opaque).
fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The per-job directory holding checkpoints and the finished report.
fn job_dir(dir: &Path, job: &Job) -> PathBuf {
    dir.join("jobs").join(job.token())
}

/// Reads a settled job's row back, if its finished report exists and
/// parses. An unreadable report is treated as unsettled: the job simply
/// reruns (and resumes from its checkpoints if any survive).
fn read_finished_report(dir: &Path, job: &Job) -> Option<JobRow> {
    let path = job_dir(dir, job).join("report.json");
    let src = std::fs::read_to_string(path).ok()?;
    let row = JobRow::parse_json(&src).ok()?;
    (row.index == job.index).then_some(row)
}

/// The newest durable checkpoint in a job directory, by ordinal
/// (`cp-NNNNNNNN` names sort lexicographically). A `cp-*.tmp` is the
/// half-written side of an interrupted atomic write — never durable,
/// and it would sort *after* its renamed sibling.
fn newest_checkpoint(dir: &Path) -> Option<PathBuf> {
    let entries = std::fs::read_dir(dir).ok()?;
    entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("cp-") && !n.ends_with(".tmp"))
        })
        .max()
}

/// Builds the `Simulation` for one grid point.
fn build_simulation(spec: &SweepSpec, job: &Job) -> Simulation {
    let benchmark =
        Benchmark::parse(&job.workload).expect("workload axis validated before expansion");
    let mut sim = Simulation::new(benchmark);
    sim.uncore(match job.uncore {
        slacksim_core::campaign::UncoreToken::Bus => UncoreKind::Bus,
        slacksim_core::campaign::UncoreToken::Directory => UncoreKind::Directory,
    })
    .cores(job.cores as usize)
    .shards(job.shards as usize)
    .scheme(job.scheme.clone())
    .engine(match spec.engine {
        slacksim_core::campaign::EngineToken::Seq => EngineKind::Sequential,
        slacksim_core::campaign::EngineToken::Threaded => EngineKind::Threaded,
        slacksim_core::campaign::EngineToken::Batched => EngineKind::Batched,
    })
    .commit_target(spec.commit)
    .seed(job.seed);
    if let Some(mc) = spec.max_cycles {
        sim.max_cycles(mc);
    }
    if let Some(cp) = spec.checkpoint {
        // Checkpoints only, never rollback: the campaign uses the
        // speculation machinery purely as its durability heartbeat.
        sim.speculation(
            SpeculationConfig::speculative(cp.interval, ViolationSelect::none()).with_mode(cp.mode),
        );
    }
    sim
}

/// Runs one job to a settled report: resume from the newest durable
/// checkpoint when one exists (falling back to a fresh start if the
/// snapshot is stale or corrupt), write `report.json` atomically, then
/// prune the checkpoints it supersedes and stream the row.
fn execute_job(
    dir: &Path,
    spec: &SweepSpec,
    job: &Job,
    stats: &CampaignStats,
    jsonl: &Mutex<File>,
) -> Result<(JobRow, SimReport), String> {
    // Test seam: a job whose token matches this env var panics on the
    // worker, so the campaign tests can prove one panicking job is
    // recorded as failed while the rest of the fleet settles green.
    if std::env::var("SLACKSIM_SWEEP_PANIC_TOKEN").is_ok_and(|t| t == job.token()) {
        panic!("injected test panic for job {}", job.token());
    }

    let jdir = job_dir(dir, job);
    let mut sim = build_simulation(spec, job);
    if spec.checkpoint.is_some() {
        sim.save_state(&jdir);
    }

    let report = match newest_checkpoint(&jdir) {
        Some(cp) => {
            let mut resumed_sim = sim.clone();
            resumed_sim.resume(&cp);
            match resumed_sim.run() {
                Ok(report) => {
                    stats.resumed.fetch_add(1, Ordering::Relaxed);
                    eprintln!("sweep: job {} resumed from {}", job.token(), cp.display());
                    Ok(report)
                }
                Err(e) => {
                    // A checkpoint that no longer restores (truncated by
                    // the crash, or from an older layout) must not strand
                    // the grid point: warn and run the job from cycle 0.
                    eprintln!(
                        "warning: sweep job {} could not resume from {} ({e}); restarting",
                        job.token(),
                        cp.display()
                    );
                    sim.run()
                }
            }
        }
        None => sim.run(),
    }
    .map_err(|e| e.to_string())?;

    // The per-job resource cap: a run stopped by `max_cycles` before
    // reaching its commit target is a terminal failure, not a settled
    // result — a stalled grid point must be visible, never averaged
    // into the aggregate as if it had finished.
    if report.committed < spec.commit {
        return Err(format!(
            "stopped at the max_cycles cap ({} cycles) with {} of {} instructions committed",
            report.global_cycles, report.committed, spec.commit
        ));
    }

    let row = JobRow {
        index: job.index,
        token: job.token(),
        workload: job.workload.clone(),
        scheme: job.kind.name().to_string(),
        uncore: job.uncore.name().to_string(),
        bound: job.bound,
        quantum: job.quantum,
        cores: job.cores,
        seed: job.seed,
        cycles: report.global_cycles,
        committed: report.committed,
        violations: report.violations.total(),
    };
    std::fs::create_dir_all(&jdir).map_err(|e| format!("cannot create {}: {e}", jdir.display()))?;
    let report_path = jdir.join("report.json");
    persist::write_atomic(&report_path, row.render_json().as_bytes())
        .map_err(|e| format!("cannot write {}: {e}", report_path.display()))?;
    // Prune only after the report is durably in place: a crash between
    // the two leaves a resumable checkpoint, never a settled-looking
    // job with no evidence.
    prune_job_checkpoints(&jdir);
    append_jsonl(jsonl, &row.render_json());
    Ok((row, report))
}

/// Removes a settled job's `cp-*` files (its report supersedes them).
fn prune_job_checkpoints(jdir: &Path) {
    let Ok(entries) = std::fs::read_dir(jdir) else {
        return;
    };
    for entry in entries.filter_map(Result::ok) {
        let path = entry.path();
        let is_cp = path
            .file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| n.starts_with("cp-"));
        if is_cp {
            let _ = std::fs::remove_file(&path);
        }
    }
}

/// Appends one already-`\n`-terminated row line to the streaming
/// aggregate. Failures are warnings: the streamed file is a convenience
/// view, `report.json` is the record.
///
/// A poisoned lock is recovered, not propagated: poisoning means some
/// job thread panicked while appending its row, and every row line is
/// written whole under the lock, so the file itself is never left
/// half-written. Panicking here instead would sink every remaining job
/// of the fleet over one casualty's bookkeeping.
fn append_jsonl(jsonl: &Mutex<File>, line: &str) {
    let mut file = jsonl
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Err(e) = file.write_all(line.as_bytes()).and_then(|()| file.flush()) {
        eprintln!("warning: aggregate.jsonl append failed: {e}");
    }
}
