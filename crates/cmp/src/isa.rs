//! The abstract target instruction set.
//!
//! SlackSim simulates SimpleScalar's PISA ISA; for slack-simulation
//! behaviour only the *timing class* of each instruction matters (latency,
//! memory behaviour, synchronisation), so the substrate models instructions
//! as timing operations rather than encodings. Workload generators produce
//! infinite [`InstrStream`]s of these operations.

use std::fmt;

use slacksim_core::persist::{ByteReader, ByteWriter, PersistError};

/// One decoded target instruction: its timing operation plus the program
/// counter it was fetched from (drives the I-cache).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Instr {
    /// Timing operation.
    pub op: Op,
    /// Fetch address (byte-granular; the core maps it to an I-cache line).
    pub pc: u64,
}

impl Instr {
    /// Creates an instruction.
    pub const fn new(op: Op, pc: u64) -> Self {
        Instr { op, pc }
    }

    /// Serializes the instruction for the on-disk snapshot format.
    pub fn save_state(&self, w: &mut ByteWriter) {
        self.op.save_state(w);
        w.u64(self.pc);
    }

    /// Decodes an instruction written by [`Instr::save_state`].
    ///
    /// # Errors
    ///
    /// Returns [`PersistError`] for malformed bytes.
    pub fn load_state(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        let op = Op::load_state(r)?;
        let pc = r.u64()?;
        Ok(Instr { op, pc })
    }
}

/// Timing operation classes, with NetBurst-like execution latencies
/// configured in [`CoreConfig`](crate::config::CoreConfig).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Single-cycle integer ALU operation.
    IntAlu,
    /// Integer multiply.
    IntMul,
    /// Integer divide (long latency, unpipelined in spirit).
    IntDiv,
    /// Floating-point add/compare class.
    FpAlu,
    /// Floating-point multiply/divide class.
    FpMul,
    /// Memory load from the given byte address.
    Load {
        /// Effective byte address.
        addr: u64,
    },
    /// Memory store to the given byte address.
    Store {
        /// Effective byte address.
        addr: u64,
    },
    /// Conditional branch; `mispredict` stalls the front end for the
    /// configured penalty.
    Branch {
        /// Whether the target branch predictor mispredicts this branch.
        mispredict: bool,
    },
    /// Global barrier: the core drains its window, notifies the
    /// synchronisation device and spins until released. Executed reliably
    /// inside the simulator (à la MP_Simplesim), so no workload-state
    /// violations can occur.
    Barrier {
        /// Barrier identity (an episode counter, not an address).
        id: u32,
    },
    /// Lock acquire on the given lock id; spins until granted.
    LockAcquire {
        /// Lock identity.
        id: u32,
    },
    /// Lock release.
    LockRelease {
        /// Lock identity.
        id: u32,
    },
}

impl Op {
    /// Whether this operation references data memory.
    pub const fn is_memory(self) -> bool {
        matches!(self, Op::Load { .. } | Op::Store { .. })
    }

    /// Whether this operation is a synchronisation primitive.
    pub const fn is_sync(self) -> bool {
        matches!(
            self,
            Op::Barrier { .. } | Op::LockAcquire { .. } | Op::LockRelease { .. }
        )
    }

    /// Serializes the operation with a stable one-byte variant tag for
    /// the on-disk snapshot format.
    pub fn save_state(self, w: &mut ByteWriter) {
        match self {
            Op::IntAlu => w.u8(0),
            Op::IntMul => w.u8(1),
            Op::IntDiv => w.u8(2),
            Op::FpAlu => w.u8(3),
            Op::FpMul => w.u8(4),
            Op::Load { addr } => {
                w.u8(5);
                w.u64(addr);
            }
            Op::Store { addr } => {
                w.u8(6);
                w.u64(addr);
            }
            Op::Branch { mispredict } => {
                w.u8(7);
                w.bool(mispredict);
            }
            Op::Barrier { id } => {
                w.u8(8);
                w.u32(id);
            }
            Op::LockAcquire { id } => {
                w.u8(9);
                w.u32(id);
            }
            Op::LockRelease { id } => {
                w.u8(10);
                w.u32(id);
            }
        }
    }

    /// Decodes an operation written by [`Op::save_state`].
    ///
    /// # Errors
    ///
    /// Returns [`PersistError`] for an unknown variant tag or truncated
    /// bytes.
    pub fn load_state(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        Ok(match r.u8()? {
            0 => Op::IntAlu,
            1 => Op::IntMul,
            2 => Op::IntDiv,
            3 => Op::FpAlu,
            4 => Op::FpMul,
            5 => Op::Load { addr: r.u64()? },
            6 => Op::Store { addr: r.u64()? },
            7 => Op::Branch {
                mispredict: r.bool()?,
            },
            8 => Op::Barrier { id: r.u32()? },
            9 => Op::LockAcquire { id: r.u32()? },
            10 => Op::LockRelease { id: r.u32()? },
            _ => return Err(PersistError::Corrupt("unknown instruction tag")),
        })
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::IntAlu => write!(f, "int"),
            Op::IntMul => write!(f, "mul"),
            Op::IntDiv => write!(f, "div"),
            Op::FpAlu => write!(f, "fadd"),
            Op::FpMul => write!(f, "fmul"),
            Op::Load { addr } => write!(f, "ld 0x{addr:x}"),
            Op::Store { addr } => write!(f, "st 0x{addr:x}"),
            Op::Branch { mispredict } => {
                write!(f, "br{}", if *mispredict { "!" } else { "" })
            }
            Op::Barrier { id } => write!(f, "barrier#{id}"),
            Op::LockAcquire { id } => write!(f, "lock#{id}"),
            Op::LockRelease { id } => write!(f, "unlock#{id}"),
        }
    }
}

/// An infinite, deterministic stream of target instructions for one core.
///
/// Streams are infinite by contract — a simulation ends on its committed-
/// instruction target, never on stream exhaustion — and must be
/// deterministic per seed so that runs are reproducible. Implementations
/// must also provide `clone_box` so core models (and thus simulation
/// checkpoints) can be cloned.
pub trait InstrStream: Send {
    /// Produces the next instruction. Never ends.
    fn next_instr(&mut self) -> Instr;

    /// Clones the stream, preserving its exact position.
    fn clone_box(&self) -> Box<dyn InstrStream>;
}

impl Clone for Box<dyn InstrStream> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// A trivial stream for tests and smoke runs: a fixed sequence repeated
/// forever, with PCs advancing 4 bytes per instruction within one page.
///
/// # Examples
///
/// ```
/// use slacksim_cmp::isa::{Instr, InstrStream, LoopStream, Op};
///
/// let mut s = LoopStream::new(vec![Op::IntAlu, Op::Load { addr: 64 }]);
/// assert_eq!(s.next_instr().op, Op::IntAlu);
/// assert_eq!(s.next_instr().op, Op::Load { addr: 64 });
/// assert_eq!(s.next_instr().op, Op::IntAlu); // wraps around
/// ```
#[derive(Debug, Clone)]
pub struct LoopStream {
    ops: Vec<Op>,
    pos: usize,
    base_pc: u64,
}

impl LoopStream {
    /// Creates a stream repeating `ops` forever.
    ///
    /// # Panics
    ///
    /// Panics if `ops` is empty.
    pub fn new(ops: Vec<Op>) -> Self {
        assert!(!ops.is_empty(), "loop body must not be empty");
        LoopStream {
            ops,
            pos: 0,
            base_pc: 0x1000,
        }
    }

    /// Sets the base program counter (default `0x1000`).
    #[must_use]
    pub fn with_base_pc(mut self, base_pc: u64) -> Self {
        self.base_pc = base_pc;
        self
    }
}

impl InstrStream for LoopStream {
    fn next_instr(&mut self) -> Instr {
        let op = self.ops[self.pos];
        let pc = self.base_pc + 4 * self.pos as u64;
        self.pos = (self.pos + 1) % self.ops.len();
        Instr::new(op, pc)
    }

    fn clone_box(&self) -> Box<dyn InstrStream> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_classification() {
        assert!(Op::Load { addr: 0 }.is_memory());
        assert!(Op::Store { addr: 0 }.is_memory());
        assert!(!Op::IntAlu.is_memory());
        assert!(Op::Barrier { id: 0 }.is_sync());
        assert!(Op::LockAcquire { id: 1 }.is_sync());
        assert!(Op::LockRelease { id: 1 }.is_sync());
        assert!(!Op::Branch { mispredict: false }.is_sync());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Op::Load { addr: 0x40 }.to_string(), "ld 0x40");
        assert_eq!(Op::Branch { mispredict: true }.to_string(), "br!");
        assert_eq!(Op::Barrier { id: 3 }.to_string(), "barrier#3");
    }

    #[test]
    fn every_op_round_trips() {
        let ops = [
            Op::IntAlu,
            Op::IntMul,
            Op::IntDiv,
            Op::FpAlu,
            Op::FpMul,
            Op::Load { addr: 0x1234 },
            Op::Store { addr: 0x4321 },
            Op::Branch { mispredict: true },
            Op::Barrier { id: 2 },
            Op::LockAcquire { id: 3 },
            Op::LockRelease { id: 4 },
        ];
        for (i, op) in ops.into_iter().enumerate() {
            let instr = Instr::new(op, 0x1000 + 4 * i as u64);
            let mut w = ByteWriter::new();
            instr.save_state(&mut w);
            let bytes = w.into_bytes();
            let mut r = ByteReader::new(&bytes);
            assert_eq!(Instr::load_state(&mut r).unwrap(), instr);
            r.finish().unwrap();
        }
        let mut bad = ByteReader::new(&[0xee]);
        assert!(Instr::load_state(&mut bad).is_err());
    }

    #[test]
    fn loop_stream_wraps_and_pcs_advance() {
        let mut s = LoopStream::new(vec![Op::IntAlu, Op::FpAlu, Op::IntMul]);
        let a = s.next_instr();
        let b = s.next_instr();
        let c = s.next_instr();
        let a2 = s.next_instr();
        assert_eq!(a.pc + 4, b.pc);
        assert_eq!(b.pc + 4, c.pc);
        assert_eq!(a, a2);
    }

    #[test]
    fn boxed_stream_clone_preserves_position() {
        let mut s: Box<dyn InstrStream> = Box::new(LoopStream::new(vec![Op::IntAlu, Op::FpAlu]));
        let _ = s.next_instr();
        let mut t = s.clone();
        assert_eq!(s.next_instr(), t.next_instr());
    }

    #[test]
    #[should_panic(expected = "loop body must not be empty")]
    fn empty_loop_rejected() {
        let _ = LoopStream::new(Vec::new());
    }
}
