//! Host-scheduling abstraction for the threaded engine.
//!
//! The threaded engine's synchronisation protocol — SPSC ring hand-off,
//! the spin→yield→park wait ladders, window publication and the
//! stop-sync command channels — normally runs on the real host scheduler
//! with real `std::thread` parking. That makes interleaving bugs (missed
//! wakeups, reordered drains, checkpoint hand-off races) both rare and
//! unreproducible: the park-timeout backstops mask lost wakeups as
//! latency, and the host never replays the same schedule twice.
//!
//! [`HostSched`] pulls every *wait* decision of the protocol behind one
//! small trait so a test harness can substitute a deterministic
//! scheduler:
//!
//! * [`NativeSched`] (the default, used by all production runs) maps each
//!   operation 1:1 onto `std`: `spin_loop`, `yield_now`,
//!   `park_timeout`/`unpark`. `point` is a no-op.
//! * A *virtual* scheduler (see the `slacksim-conformance` crate)
//!   serialises all engine threads onto a cooperative token, decides at
//!   every [`HostSched::point`] which thread runs next from a seeded or
//!   scripted policy, and gives parks **no timeout** — so a lost wakeup
//!   that the native backstop would quietly absorb becomes a crisply
//!   detectable stall.
//!
//! The protocol logic itself (parked flags, SeqCst fences, window
//! stores) is *not* abstracted: the engine runs the identical code under
//! both schedulers. Only the primitive wait operations are routed
//! through the trait.

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Identifier of a registered schedulable task (dense, per scheduler).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TaskId(pub usize);

impl TaskId {
    /// Returns the dense index of this task.
    #[inline]
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task{}", self.0)
    }
}

/// Labelled scheduling points inside the threaded-engine protocol.
///
/// A virtual scheduler may preempt the running task at any of these; the
/// native scheduler ignores them. The labels let targeted adversarial
/// policies aim at specific races (e.g. preempt at [`PreParkCheck`] to
/// exercise the park-just-before-wake window, or at [`RingPush`] /
/// [`RingDrain`] to interleave a drain with an overflow spill).
///
/// [`PreParkCheck`]: SchedSite::PreParkCheck
/// [`RingPush`]: SchedSite::RingPush
/// [`RingDrain`]: SchedSite::RingDrain
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum SchedSite {
    /// Producer-side SPSC ring append (single or batch).
    RingPush,
    /// Consumer-side SPSC ring removal.
    RingPop,
    /// Consumer-side SPSC ring batch drain.
    RingDrain,
    /// Mutex-backed shared-queue operation.
    QueueOp,
    /// Checkpoint snapshot deposited into its hand-off slot.
    SnapshotPut,
    /// Checkpoint snapshot taken from its hand-off slot.
    SnapshotTake,
    /// Top of the manager's consolidation loop.
    ManagerLoop,
    /// Manager idling in its backoff ladder.
    ManagerIdle,
    /// Core thread about to start a window burst.
    CoreBurst,
    /// Core thread idling while capped by the window.
    CoreIdle,
    /// Core thread between publishing its parked flag and re-checking the
    /// sleep condition — the Dekker-style race window the wake fences
    /// protect.
    PreParkCheck,
    /// Manager polling for a command acknowledgement.
    AwaitAck,
    /// Core thread polling for the next manager command.
    AwaitCmd,
    /// Top of a shard-manager's consolidation loop (threaded engine with
    /// `shards > 1`).
    ShardLoop,
    /// Shard-manager thread idling in its backoff ladder.
    ShardIdle,
}

/// The host-scheduling interface the threaded engine waits through.
///
/// One instance is shared by every thread of one engine run. Methods
/// that act on "the current task" resolve it from the calling thread;
/// [`unpark`](HostSched::unpark) addresses a task registered by another
/// thread.
///
/// # Contract
///
/// * Every engine thread calls [`register`](HostSched::register) exactly
///   once before any other method and [`unregister`](HostSched::unregister)
///   once when it is done scheduling (it may keep running natively
///   afterwards, e.g. thread teardown).
/// * [`park_timeout`](HostSched::park_timeout) may return spuriously;
///   callers must re-check their sleep condition in a loop (the engine
///   already does — it is the same contract as `std::thread::park`).
/// * [`unpark`](HostSched::unpark) stores a wake token if the target is
///   not currently parked, exactly like `std::thread::Thread::unpark`.
pub trait HostSched: Send + Sync + fmt::Debug {
    /// Returns `true` for virtual (test) schedulers. The engine uses this
    /// to switch blocking channel receives to sched-visible polling and
    /// to pin its wait-ladder depths to machine-independent values.
    fn virtualized(&self) -> bool {
        false
    }

    /// Registers the calling thread as a schedulable task. `name` is a
    /// stable role label (`"manager"`, `"core0"`, …): virtual schedulers
    /// key task identity on it so ids do not depend on thread start-up
    /// races.
    fn register(&self, name: &str) -> TaskId;

    /// Unregisters the calling thread (its task never runs again).
    fn unregister(&self);

    /// A potential preemption point. No-op natively.
    fn point(&self, _site: SchedSite) {}

    /// One spin-tier wait iteration (native: `std::hint::spin_loop`).
    fn idle_spin(&self, site: SchedSite);

    /// One yield-tier wait iteration (native: `std::thread::yield_now`).
    fn idle_yield(&self, site: SchedSite);

    /// Parks the calling task until [`unpark`](HostSched::unpark) or (for
    /// the native scheduler) the timeout. Virtual schedulers are free to
    /// ignore the timeout — that is the point: a wakeup the protocol
    /// loses is then a detectable stall instead of silent latency.
    fn park_timeout(&self, site: SchedSite, timeout: Duration);

    /// Wakes `target` if parked, or stores its wake token otherwise.
    fn unpark(&self, target: TaskId);
}

/// The production scheduler: a thin veneer over `std::thread`.
///
/// `register` records the calling thread's handle so `unpark` can reach
/// it; everything else maps directly onto the std primitive. All methods
/// on the wait paths are branch-free apart from the (rare) unpark lookup.
#[derive(Debug, Default)]
pub struct NativeSched {
    /// Task handles, indexed by `TaskId`. Only touched at registration
    /// and on the (rare) unpark-delivery path.
    threads: Mutex<Vec<Option<std::thread::Thread>>>,
    next_id: AtomicUsize,
}

impl NativeSched {
    /// Creates an empty native scheduler.
    pub fn new() -> Self {
        NativeSched::default()
    }
}

impl HostSched for NativeSched {
    fn register(&self, _name: &str) -> TaskId {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let mut threads = self.threads.lock().expect("sched poisoned");
        if threads.len() <= id {
            threads.resize(id + 1, None);
        }
        threads[id] = Some(std::thread::current());
        TaskId(id)
    }

    fn unregister(&self) {
        // Handles are kept: an unpark racing with task exit must still
        // find a valid `Thread` (unparking a finished thread is benign).
    }

    #[inline]
    fn idle_spin(&self, _site: SchedSite) {
        std::hint::spin_loop();
    }

    #[inline]
    fn idle_yield(&self, _site: SchedSite) {
        std::thread::yield_now();
    }

    #[inline]
    fn park_timeout(&self, _site: SchedSite, timeout: Duration) {
        std::thread::park_timeout(timeout);
    }

    fn unpark(&self, target: TaskId) {
        let handle = {
            let threads = self.threads.lock().expect("sched poisoned");
            threads.get(target.index()).and_then(Clone::clone)
        };
        if let Some(t) = handle {
            t.unpark();
        }
    }
}

/// A cloneable, debuggable handle to the run's host scheduler, carried
/// inside [`EngineConfig`](crate::engine::EngineConfig).
///
/// Defaults to a fresh [`NativeSched`]. Construct with
/// [`SchedRef::new`] to install a virtual scheduler for conformance
/// runs.
#[derive(Clone)]
pub struct SchedRef(Arc<dyn HostSched>);

impl SchedRef {
    /// Wraps a scheduler implementation.
    pub fn new(sched: Arc<dyn HostSched>) -> Self {
        SchedRef(sched)
    }

    /// A fresh production scheduler.
    pub fn native() -> Self {
        SchedRef(Arc::new(NativeSched::new()))
    }

    /// The underlying scheduler.
    #[inline]
    pub fn get(&self) -> &Arc<dyn HostSched> {
        &self.0
    }

    /// Returns the scheduler as a hook for data-structure
    /// instrumentation, but only when it is virtual: production runs keep
    /// their queue fast paths free of even a no-op dynamic call.
    pub fn instrumentation_hook(&self) -> Option<Arc<dyn HostSched>> {
        if self.0.virtualized() {
            Some(Arc::clone(&self.0))
        } else {
            None
        }
    }
}

impl fmt::Debug for SchedRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("SchedRef").field(&self.0).finish()
    }
}

impl Default for SchedRef {
    fn default() -> Self {
        SchedRef::native()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn native_register_assigns_dense_ids() {
        let s = NativeSched::new();
        assert_eq!(s.register("manager"), TaskId(0));
        assert_eq!(s.register("core0"), TaskId(1));
        assert!(!s.virtualized());
    }

    #[test]
    fn native_unpark_wakes_parked_thread() {
        let s = Arc::new(NativeSched::new());
        let me = s.register("main");
        let s2 = Arc::clone(&s);
        let h = std::thread::spawn(move || {
            let _worker = s2.register("worker");
            s2.unpark(me);
        });
        // Either the token arrives before the park (it returns
        // immediately) or the unpark lands during it; both terminate.
        s.park_timeout(SchedSite::CoreIdle, Duration::from_secs(5));
        h.join().expect("worker finishes");
    }

    #[test]
    fn native_unpark_of_unknown_task_is_benign() {
        let s = NativeSched::new();
        s.unpark(TaskId(99));
    }

    #[test]
    fn sched_ref_default_is_native() {
        let r = SchedRef::default();
        assert!(!r.get().virtualized());
        assert!(r.instrumentation_hook().is_none());
        assert!(format!("{r:?}").contains("SchedRef"));
    }

    #[test]
    fn task_id_display_and_index() {
        assert_eq!(TaskId(3).index(), 3);
        assert_eq!(TaskId(3).to_string(), "task3");
    }
}
