//! The cycle-by-cycle gold standard: zero violations by construction, for
//! every benchmark — and the schemes that share its ordering guarantees.

use slacksim::scheme::Scheme;
use slacksim::{Benchmark, EngineKind, Simulation};

const COMMIT: u64 = 60_000;

fn run(benchmark: Benchmark, scheme: Scheme) -> slacksim::SimReport {
    Simulation::new(benchmark)
        .commit_target(COMMIT)
        .scheme(scheme)
        .engine(EngineKind::Sequential)
        .run()
        .expect("run succeeds")
}

#[test]
fn cycle_by_cycle_is_violation_free_on_every_benchmark() {
    for benchmark in Benchmark::ALL {
        let r = run(benchmark, Scheme::CycleByCycle);
        assert_eq!(
            r.violations.total(),
            0,
            "{benchmark}: the gold standard must never violate"
        );
        assert!(r.committed >= COMMIT);
        assert!(r.global_cycles > 0);
        assert!(
            r.uncore.get("bus_transactions") > 0,
            "{benchmark}: the bus must carry traffic"
        );
    }
}

#[test]
fn slack_bound_one_is_violation_free() {
    // A 1-cycle slack bound cannot reorder events across cycles.
    for benchmark in Benchmark::ALL {
        let r = run(benchmark, Scheme::BoundedSlack { bound: 1 });
        assert_eq!(r.violations.total(), 0, "{benchmark}");
    }
}

#[test]
fn quantum_keeps_event_order() {
    // Quantum simulation batch-services at boundaries in timestamp order:
    // no monitor violations (its error mode is timing distortion instead).
    for benchmark in [Benchmark::Fft, Benchmark::Lu] {
        let r = run(benchmark, Scheme::Quantum { quantum: 100 });
        assert_eq!(r.violations.total(), 0, "{benchmark}");
    }
}

#[test]
fn coherence_behaviour_is_plausible_under_cc() {
    let r = run(Benchmark::Fft, Scheme::CycleByCycle);
    // FFT's transpose phases force sharing: remote reads must trigger
    // cache-to-cache transfers and stores must invalidate.
    assert!(r.uncore.get("cache_to_cache_transfers") > 0);
    assert!(r.core_total("invalidations_received") > 0);
    // Barriers complete (all 8 threads arrive).
    assert!(r.uncore.get("barriers_completed") > 0);
    // The L2 sees both hits and misses.
    assert!(r.uncore.get("l2_hits") > 0);
    assert!(r.uncore.get("l2_misses") > 0);
}

#[test]
fn locks_serialise_under_cc() {
    let r = run(Benchmark::Barnes, Scheme::CycleByCycle);
    assert!(r.uncore.get("lock_grants") > 0, "Barnes uses cell locks");
    assert_eq!(
        r.core_total("lock_acquires"),
        r.core_total("lock_releases"),
        "every acquire is released"
    );
}

#[test]
fn cpi_is_in_a_sane_range() {
    for benchmark in Benchmark::ALL {
        let r = run(benchmark, Scheme::CycleByCycle);
        let per_core_ipc = r.committed as f64 / (r.global_cycles as f64 * r.per_core.len() as f64);
        assert!(
            (0.05..=4.0).contains(&per_core_ipc),
            "{benchmark}: per-core IPC {per_core_ipc} out of range"
        );
    }
}
