//! One module per regenerated figure or table of the paper, plus the
//! extension experiments of `DESIGN.md` §6.

pub mod ext;
pub mod fig3;
pub mod fig4;
pub mod table2;
pub mod table34;
pub mod table5;

use crate::table::Table;
use slacksim_workloads::Benchmark;

/// Renders the paper's Table 1 (benchmark input sets) — configuration
/// documentation rather than measurement.
pub fn table1() -> Table {
    let mut t = Table::new("Table 1. Benchmarks.");
    t.headers(["Benchmark", "Input Set"]);
    for b in Benchmark::ALL {
        t.row([b.name(), b.input_set()]);
    }
    t.note("synthetic generators reproducing each program's sharing/synchronisation signature");
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn table1_lists_all_benchmarks() {
        let t = super::table1();
        assert_eq!(t.len(), 4);
        let s = t.to_string();
        assert!(s.contains("64K points"));
        assert!(s.contains("216 molecules"));
    }
}
