//! Emits a campaign sweep-spec JSON document on stdout, seeded from the
//! shared experiment scaling knobs — the bridge between the bench
//! harness's `--commit/--seed/--cores/--quick/--full` vocabulary and
//! `slacksim sweep --spec`:
//!
//! ```text
//! gen_sweep --quick > sweep.json
//! slacksim sweep --spec sweep.json --dir /tmp/campaign
//! ```
//!
//! The grid is {cc, bounded, quantum} x 2 consecutive seeds = 6 jobs,
//! the shape CI's campaign smoke stage runs.

use slacksim_bench::scale::Scale;

fn main() {
    let scale = Scale::from_env(4_000);
    print!("{}", scale.sweep_spec(&["cc", "bounded", "quantum"], 2));
}
