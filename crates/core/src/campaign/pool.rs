//! Work-stealing worker pool for campaign jobs.
//!
//! Jobs are dealt round-robin onto per-worker deques up front; each
//! worker drains its own deque from the front and, when empty, steals
//! from the *back* of its peers' deques (classic Chase–Lev shape, here
//! mutex-backed because campaign jobs are seconds long and the deque op
//! is nanoseconds — contention is irrelevant, determinism under the
//! virtual scheduler is not). Because the full job set is enqueued
//! before any worker starts, an empty sweep of every deque is a
//! termination proof: no parking or rendezvous is needed.
//!
//! All waits and deque operations route through the [`HostSched`] seam
//! ([`SchedSite::QueueOp`] before every lock), and the pool registers
//! its threads under the same role names the threaded engine uses —
//! the calling thread is `"manager"` (and doubles as worker 0), spawned
//! workers are `"core0"`, `"core1"`, … — so the conformance crate's
//! `VirtualSched` can serialise and fuzz pool schedules exactly as it
//! fuzzes engine schedules, with no pool-specific task vocabulary.
//!
//! [`HostSched`]: crate::sched::HostSched

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::sched::{SchedRef, SchedSite};

/// What the pool observed while running one job set — the raw material
/// for the fairness and backpressure assertions in the campaign tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolOutcome {
    /// Job indices each worker executed, in execution order. Length is
    /// the effective worker count; the per-worker counts are the
    /// fairness signal (no worker may starve when jobs ≫ workers) and
    /// the concatenation is the schedule fingerprint the conformance
    /// determinism oracle compares across replays.
    pub per_worker_jobs: Vec<Vec<usize>>,
    /// High-water mark of concurrently *running* jobs: the backpressure
    /// proof that an oversubscribed campaign never runs more jobs at
    /// once than it has workers.
    pub max_concurrent: usize,
}

impl PoolOutcome {
    /// Jobs-per-worker counts, index-aligned with `per_worker_jobs`.
    pub fn counts(&self) -> Vec<usize> {
        self.per_worker_jobs.iter().map(Vec::len).collect()
    }
}

/// Shared state of one pool run.
struct PoolState<J, R> {
    /// Per-worker job-index deques (own pops from the front, steals from
    /// the back).
    deques: Vec<Mutex<VecDeque<usize>>>,
    /// Job payloads, taken exactly once by whichever worker pops the
    /// matching index.
    payloads: Vec<Mutex<Option<J>>>,
    /// Result slots, index-aligned with `payloads`.
    results: Vec<Mutex<Option<R>>>,
    /// Currently-running job count and its high-water mark.
    running: AtomicUsize,
    high_water: AtomicUsize,
    sched: SchedRef,
}

impl<J, R> PoolState<J, R> {
    /// Pops the next job index for `worker`: own deque first (front),
    /// then peers scanned from the right neighbour round-robin (back).
    fn next_job(&self, worker: usize) -> Option<usize> {
        let workers = self.deques.len();
        let sched = self.sched.get();
        sched.point(SchedSite::QueueOp);
        if let Some(job) = self.deques[worker]
            .lock()
            .expect("pool deque poisoned")
            .pop_front()
        {
            return Some(job);
        }
        for step in 1..workers {
            let victim = (worker + step) % workers;
            sched.point(SchedSite::QueueOp);
            if let Some(job) = self.deques[victim]
                .lock()
                .expect("pool deque poisoned")
                .pop_back()
            {
                return Some(job);
            }
        }
        None
    }

    /// One worker's whole life: drain + steal until every deque is dry.
    fn work<F>(&self, worker: usize, exec: &F) -> Vec<usize>
    where
        F: Fn(usize, usize, J) -> R + Sync,
    {
        let mut executed = Vec::new();
        while let Some(job) = self.next_job(worker) {
            let payload = self.payloads[job]
                .lock()
                .expect("pool payload poisoned")
                .take()
                .expect("job payload taken exactly once");
            let running = self.running.fetch_add(1, Ordering::SeqCst) + 1;
            self.high_water.fetch_max(running, Ordering::SeqCst);
            let result = exec(worker, job, payload);
            self.running.fetch_sub(1, Ordering::SeqCst);
            *self.results[job].lock().expect("pool result poisoned") = Some(result);
            executed.push(job);
        }
        executed
    }
}

/// Runs `jobs` on a work-stealing pool of `workers` threads and returns
/// the results in job order plus the observed schedule.
///
/// `exec` is called as `exec(worker, job_index, payload)` — exactly once
/// per job, on whichever worker claimed it. The effective worker count
/// is clamped to `min(workers, jobs.len()).max(1)`: a pool wider than
/// the grid would spawn threads with nothing to do, and zero workers is
/// promoted to one so the call always makes progress.
///
/// The calling thread registers with `sched` as `"manager"` and works
/// as worker 0; the `M-1` spawned workers register as `"core0"` …
/// `"core{M-2}"`. Every thread unregisters before the scope joins
/// (joining a still-registered task would deadlock a cooperative
/// virtual scheduler waiting for it to reach a scheduling point).
pub fn run_jobs<J, R, F>(
    jobs: Vec<J>,
    workers: usize,
    sched: &SchedRef,
    exec: F,
) -> (Vec<R>, PoolOutcome)
where
    J: Send,
    R: Send,
    F: Fn(usize, usize, J) -> R + Sync,
{
    let total = jobs.len();
    let workers = workers.min(total).max(1);

    let mut deques: Vec<Mutex<VecDeque<usize>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for job in 0..total {
        deques[job % workers]
            .get_mut()
            .expect("fresh deque")
            .push_back(job);
    }
    let state = PoolState {
        deques,
        payloads: jobs.into_iter().map(|j| Mutex::new(Some(j))).collect(),
        results: (0..total).map(|_| Mutex::new(None)).collect(),
        running: AtomicUsize::new(0),
        high_water: AtomicUsize::new(0),
        sched: sched.clone(),
    };

    let host = sched.get();
    let mut per_worker_jobs: Vec<Vec<usize>> = vec![Vec::new(); workers];
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers.saturating_sub(1));
        for w in 1..workers {
            let state = &state;
            let exec = &exec;
            handles.push(scope.spawn(move || {
                let host = state.sched.get();
                host.register(&format!("core{}", w - 1));
                let executed = state.work(w, exec);
                host.unregister();
                executed
            }));
        }
        // Register only after every worker thread is spawned: a virtual
        // scheduler holds all tasks at an entry barrier until the whole
        // expected set has arrived, so registering before the spawns
        // would deadlock the pool against its own unspawned workers.
        host.register("manager");
        per_worker_jobs[0] = state.work(0, &exec);
        // Unregister before joining: a cooperative virtual scheduler
        // would otherwise wait forever for this task's next sched point
        // while we block natively in join() (the PR-3 manager lesson).
        host.unregister();
        for (w, handle) in handles.into_iter().enumerate() {
            per_worker_jobs[w + 1] = handle.join().expect("pool worker panicked");
        }
    });

    let results = state
        .results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("pool result poisoned")
                .expect("every dealt job index is executed exactly once")
        })
        .collect();
    let outcome = PoolOutcome {
        per_worker_jobs,
        max_concurrent: state.high_water.load(Ordering::SeqCst),
    };
    (results, outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_job_runs_exactly_once_in_order() {
        let jobs: Vec<u64> = (0..40).collect();
        let (results, outcome) = run_jobs(jobs, 4, &SchedRef::native(), |_, idx, j| {
            assert_eq!(idx as u64, j);
            j * 10
        });
        assert_eq!(results, (0..40).map(|j| j * 10).collect::<Vec<u64>>());
        let mut seen: Vec<usize> = outcome.per_worker_jobs.concat();
        seen.sort_unstable();
        assert_eq!(seen, (0..40).collect::<Vec<usize>>());
        assert_eq!(outcome.counts().iter().sum::<usize>(), 40);
        assert!(outcome.max_concurrent <= 4);
    }

    #[test]
    fn pool_width_is_clamped_to_job_count() {
        let (results, outcome) = run_jobs(vec![7u64], 16, &SchedRef::native(), |_, _, j| j);
        assert_eq!(results, vec![7]);
        assert_eq!(outcome.per_worker_jobs.len(), 1);
        assert_eq!(outcome.max_concurrent, 1);
    }

    #[test]
    fn zero_workers_is_promoted_to_one() {
        let (results, _) = run_jobs(vec![1u64, 2], 0, &SchedRef::native(), |_, _, j| j + 1);
        assert_eq!(results, vec![2, 3]);
    }

    #[test]
    fn empty_job_set_returns_immediately() {
        let (results, outcome) = run_jobs(Vec::<u64>::new(), 3, &SchedRef::native(), |_, _, j| j);
        assert!(results.is_empty());
        assert_eq!(outcome.max_concurrent, 0);
    }

    #[test]
    fn idle_workers_steal_from_loaded_peers() {
        // Deal 12 jobs to 3 workers, but make worker 0's own share slow:
        // workers 1-2 finish their shares and must steal the remainder
        // of worker 0's deque for the run to stay balanced.
        let jobs: Vec<u64> = (0..12).collect();
        let (_, outcome) = run_jobs(jobs, 3, &SchedRef::native(), |worker, _, j| {
            if worker == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            j
        });
        // Worker 0 sleeps 20ms per job; its 4-job share takes 80ms while
        // the other two drain everything else. It cannot have run all 12.
        assert!(outcome.counts()[0] < 12);
        assert_eq!(outcome.counts().iter().sum::<usize>(), 12);
    }
}
