//! Randomised property tests for the kernel's data structures and
//! invariants, driven by the in-tree deterministic [`Xoshiro256`] RNG so
//! they need no external crates and reproduce bit-identically on every
//! run.

use slacksim_core::event::{CoreId, GlobalQueue, Inbox, Timestamped};
use slacksim_core::model::{speculative_time, SpeculativeModelInputs};
use slacksim_core::rng::Xoshiro256;
use slacksim_core::scheme::{AdaptiveConfig, AdaptiveController, PaceSample, Pacer, Scheme};
use slacksim_core::speculative::IntervalTracker;
use slacksim_core::time::Cycle;
use slacksim_core::violation::{KeyedMonitor, TimestampMonitor, ViolationKind, ViolationTally};

const CASES: u64 = 64;

/// The monitor must flag exactly the operations that are strictly smaller
/// than the running maximum of everything seen before.
#[test]
fn monitor_matches_brute_force_oracle() {
    for case in 0..CASES {
        let mut rng = Xoshiro256::new(0xA11C + case);
        let len = 1 + rng.next_below(200) as usize;
        let mut monitor = TimestampMonitor::new();
        let mut max_seen = 0u64;
        for _ in 0..len {
            let t = rng.next_below(1000);
            let expected = t < max_seen;
            let got = monitor.observe(Cycle::new(t));
            assert_eq!(got, expected, "case {case}, ts {t}");
            max_seen = max_seen.max(t);
        }
    }
}

/// Keyed monitors are independent per key.
#[test]
fn keyed_monitor_isolates_keys() {
    for case in 0..CASES {
        let mut rng = Xoshiro256::new(0xB22D + case);
        let len = 1 + rng.next_below(200) as usize;
        let mut km: KeyedMonitor<u8> = KeyedMonitor::new();
        let mut maxes = [0u64; 4];
        for _ in 0..len {
            let key = rng.next_below(4) as u8;
            let t = rng.next_below(1000);
            let expected = t < maxes[key as usize];
            assert_eq!(km.observe(key, Cycle::new(t)), expected, "case {case}");
            maxes[key as usize] = maxes[key as usize].max(t);
        }
    }
}

/// Draining the global queue after pushing yields events sorted by
/// (timestamp, core, arrival order).
#[test]
fn global_queue_pops_in_canonical_order() {
    for case in 0..CASES {
        let mut rng = Xoshiro256::new(0xC33E + case);
        let len = 1 + rng.next_below(100) as usize;
        let events: Vec<(u64, u16)> = (0..len)
            .map(|_| (rng.next_below(100), rng.next_below(8) as u16))
            .collect();
        let mut gq: GlobalQueue<usize> = GlobalQueue::new();
        for (i, &(ts, core)) in events.iter().enumerate() {
            gq.push(CoreId::new(core), Timestamped::new(Cycle::new(ts), i));
        }
        let mut expected: Vec<(u64, u16, usize)> = events
            .iter()
            .enumerate()
            .map(|(i, &(ts, core))| (ts, core, i))
            .collect();
        expected.sort();
        let mut got = Vec::new();
        while let Some((core, ev)) = gq.pop() {
            got.push((ev.ts.as_u64(), core.index() as u16, ev.payload));
        }
        assert_eq!(got, expected, "case {case}");
    }
}

/// The inbox never releases an event before its timestamp, and releases
/// everything by the time `now` passes the maximum.
#[test]
fn inbox_due_semantics() {
    for case in 0..CASES {
        let mut rng = Xoshiro256::new(0xD44F + case);
        let n_events = 1 + rng.next_below(60) as usize;
        let events: Vec<u64> = (0..n_events).map(|_| rng.next_below(100)).collect();
        let n_probes = 1 + rng.next_below(40) as usize;
        let mut probes: Vec<u64> = (0..n_probes).map(|_| rng.next_below(120)).collect();
        let mut inbox: Inbox<u64> = Inbox::new();
        for &ts in &events {
            inbox.deliver(Timestamped::new(Cycle::new(ts), ts));
        }
        probes.sort_unstable();
        let mut released = 0usize;
        for &now in &probes {
            while let Some(ev) = inbox.pop_due(Cycle::new(now)) {
                assert!(ev.ts.as_u64() <= now, "case {case}: early release");
                released += 1;
            }
        }
        while inbox.pop_due(Cycle::new(1000)).is_some() {
            released += 1;
        }
        assert_eq!(released, events.len(), "case {case}");
    }
}

/// The interval tracker agrees with a brute-force recomputation.
#[test]
fn interval_tracker_matches_oracle() {
    for case in 0..CASES {
        let mut rng = Xoshiro256::new(0xE550 + case);
        let n_viol = rng.next_below(100) as usize;
        let mut sorted: Vec<u64> = (0..n_viol).map(|_| rng.next_below(5_000)).collect();
        sorted.sort_unstable();
        let interval = rng.next_range(10, 500);
        let end = rng.next_range(5_000, 6_000);

        let mut tracker = IntervalTracker::new(interval);
        // Feed violations in time order, closing intervals as we pass them
        // (as the engine does).
        for &v in &sorted {
            tracker.close_intervals_up_to(Cycle::new(v));
            tracker.observe_violation(Cycle::new(v));
        }
        tracker.close_intervals_up_to(Cycle::new(end));

        // The same stream *without* interleaved closes must agree: a
        // violation stamped past the current interval closes the
        // overtaken intervals itself before attributing.
        let mut ahead = IntervalTracker::new(interval);
        for &v in &sorted {
            ahead.observe_violation(Cycle::new(v));
        }
        ahead.close_intervals_up_to(Cycle::new(end));
        assert_eq!(ahead.intervals_total(), tracker.intervals_total());
        assert_eq!(ahead.intervals_violating(), tracker.intervals_violating());
        assert!(
            (ahead.mean_first_distance() - tracker.mean_first_distance()).abs() < 1e-9,
            "case {case}: self-closing path diverged"
        );

        // Oracle: bucket violations by interval index.
        let total = end / interval;
        let mut first: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
        for &v in &sorted {
            let idx = v / interval;
            if idx < total {
                first.entry(idx).or_insert(v - idx * interval);
            }
        }
        assert_eq!(tracker.intervals_total(), total, "case {case}");
        assert_eq!(
            tracker.intervals_violating(),
            first.len() as u64,
            "case {case}"
        );
        if !first.is_empty() {
            let mean = first.values().sum::<u64>() as f64 / first.len() as f64;
            assert!(
                (tracker.mean_first_distance() - mean).abs() < 1e-9,
                "case {case}"
            );
        }
    }
}

/// Tally `since` and `merge` are inverse-ish: a.merge(b.since(a)) == b
/// when b dominates a.
#[test]
fn tally_merge_since_roundtrip() {
    for case in 0..CASES {
        let mut rng = Xoshiro256::new(0xF661 + case);
        let mut a = ViolationTally::new();
        let mut b = ViolationTally::new();
        for kind in ViolationKind::ALL {
            let x = rng.next_below(50);
            let extra = rng.next_below(50);
            for _ in 0..x {
                a.record(kind);
                b.record(kind);
            }
            for _ in 0..extra {
                b.record(kind);
            }
        }
        let delta = b.since(&a);
        let mut a2 = a;
        a2.merge(&delta);
        assert_eq!(a2, b, "case {case}");
    }
}

/// Every pacer keeps its window strictly ahead of global time (liveness)
/// and monotone in global time.
#[test]
fn pacer_windows_are_live_and_monotone() {
    for case in 0..CASES {
        let mut rng = Xoshiro256::new(0x1772 + case);
        let bound = rng.next_range(1, 500);
        let quantum = rng.next_range(1, 500);
        let len = 2 + rng.next_below(48) as usize;
        let mut sorted: Vec<u64> = (0..len).map(|_| rng.next_below(100_000)).collect();
        sorted.sort_unstable();
        let pacers: Vec<Box<dyn Pacer>> = vec![
            Scheme::CycleByCycle.into_pacer(),
            Scheme::BoundedSlack { bound }.into_pacer(),
            Scheme::UnboundedSlack.into_pacer(),
            Scheme::Quantum { quantum }.into_pacer(),
            Scheme::Adaptive(AdaptiveConfig::default()).into_pacer(),
        ];
        for p in &pacers {
            let mut last = Cycle::ZERO;
            for &g in &sorted {
                let w = p.window_end(Cycle::new(g));
                assert!(w > Cycle::new(g), "case {case}: {} stalls", p.scheme_name());
                assert!(w >= last, "case {case}: {} regressed", p.scheme_name());
                last = w;
            }
        }
    }
}

/// The adaptive controller's published bound always stays within the
/// configured limits, whatever the violation history.
#[test]
fn adaptive_bound_stays_in_limits() {
    for case in 0..CASES {
        let mut rng = Xoshiro256::new(0x2883 + case);
        let min_bound = rng.next_range(1, 8);
        let max_bound = min_bound + rng.next_below(120);
        let n_samples = 1 + rng.next_below(100) as usize;
        let mut ctl = AdaptiveController::new(AdaptiveConfig {
            min_bound,
            max_bound,
            initial_bound: min_bound,
            ..AdaptiveConfig::default()
        });
        let mut global = 0u64;
        for _ in 0..n_samples {
            let cycles = rng.next_range(1, 5_000);
            let violations = rng.next_below(500);
            global += cycles;
            ctl.on_sample(&PaceSample {
                global: Cycle::new(global),
                window_cycles: cycles,
                window_violations: violations,
            });
            let b = ctl.current_bound().expect("adaptive bound");
            assert!(
                b >= min_bound && b <= max_bound,
                "case {case}: bound {b} outside [{min_bound}, {max_bound}]"
            );
        }
        assert_eq!(ctl.samples(), n_samples as u64, "case {case}");
    }
}

/// A uniformly noisier history never ends with a larger bound than a
/// quieter one (monotone response of the default policy).
#[test]
fn adaptive_response_is_monotone_in_noise() {
    for case in 0..CASES {
        let mut rng = Xoshiro256::new(0x3994 + case);
        let len = 10 + rng.next_below(50) as usize;
        let boost = rng.next_range(1, 10);
        let mut quiet = AdaptiveController::new(AdaptiveConfig::default());
        let mut noisy = AdaptiveController::new(AdaptiveConfig::default());
        let mut global = 0u64;
        for _ in 0..len {
            let v = rng.next_below(4);
            global += 1024;
            let s = |violations| PaceSample {
                global: Cycle::new(global),
                window_cycles: 1024,
                window_violations: violations,
            };
            quiet.on_sample(&s(v));
            noisy.on_sample(&s(v + boost));
        }
        assert!(
            noisy.fractional_bound() <= quiet.fractional_bound(),
            "case {case}"
        );
    }
}

/// The analytical model is monotone in F and Dr, and equals Tcpt when no
/// interval violates.
#[test]
fn speculative_model_monotonicity() {
    for case in 0..CASES {
        let mut rng = Xoshiro256::new(0x4AA5 + case);
        let t_cc = 1.0 + rng.next_f64() * 999.0;
        let t_cpt = 1.0 + rng.next_f64() * 999.0;
        let f = rng.next_f64();
        let dr = rng.next_f64() * 10_000.0;
        let interval = 10_000.0 + rng.next_f64() * 90_000.0;
        let base = SpeculativeModelInputs {
            t_cc,
            t_cpt,
            fraction_violating: f,
            rollback_distance: dr,
            interval,
        };
        let ts = speculative_time(&base);
        assert!(ts >= 0.0, "case {case}");
        // No violations: exactly the checkpointing run.
        let clean = SpeculativeModelInputs {
            fraction_violating: 0.0,
            ..base
        };
        assert!(
            (speculative_time(&clean) - t_cpt).abs() < 1e-9,
            "case {case}"
        );
        // The F-derivative of the model is Tcc − Tcpt·(1 − Dr/I): more
        // violating intervals cost more exactly when the CC replay is
        // slower than the normal-simulation time they displace.
        let df = t_cc - t_cpt * (1.0 - dr / interval);
        let worse = SpeculativeModelInputs {
            fraction_violating: (f + 0.1).min(1.0),
            ..base
        };
        let delta = speculative_time(&worse) - ts;
        if worse.fraction_violating > f {
            assert!(
                (delta - df * (worse.fraction_violating - f)).abs() < 1e-6,
                "case {case}: model must be affine in F"
            );
        }
        // Longer rollback distance can only cost more.
        let farther = SpeculativeModelInputs {
            rollback_distance: dr + 100.0,
            ..base
        };
        assert!(speculative_time(&farther) >= ts - 1e-9, "case {case}");
    }
}

/// Bounded RNG draws stay in range for arbitrary bounds and seeds.
#[test]
fn rng_bounded_draws() {
    for case in 0..CASES {
        let mut meta = Xoshiro256::new(0x5BB6 + case);
        let seed = meta.next_u64();
        let bound = 1 + meta.next_below(u64::MAX - 1);
        let n = 1 + meta.next_below(100);
        let mut rng = Xoshiro256::new(seed);
        for _ in 0..n {
            assert!(rng.next_below(bound) < bound, "case {case}");
        }
    }
}

/// Cycle arithmetic: saturating ops never panic and ordering holds.
#[test]
fn cycle_arithmetic() {
    for case in 0..CASES {
        let mut rng = Xoshiro256::new(0x6CC7 + case);
        let a = rng.next_u64();
        let b = rng.next_u64();
        let ca = Cycle::new(a);
        let cb = Cycle::new(b);
        assert_eq!(ca.max(cb).as_u64(), a.max(b), "case {case}");
        assert_eq!(ca.min(cb).as_u64(), a.min(b), "case {case}");
        assert_eq!(ca.saturating_sub(cb), a.saturating_sub(b), "case {case}");
        assert!(
            ca.saturating_add(b).as_u64() >= a || a.checked_add(b).is_none(),
            "case {case}"
        );
    }
}

/// `next_multiple_of` lands strictly above on an exact multiple.
#[test]
fn cycle_next_multiple() {
    for case in 0..CASES {
        let mut rng = Xoshiro256::new(0x7DD8 + case);
        let raw = rng.next_below(1_000_000);
        let q = rng.next_range(1, 10_000);
        let n = Cycle::new(raw).next_multiple_of(q);
        assert!(n.as_u64() > raw, "case {case}");
        assert_eq!(n.as_u64() % q, 0, "case {case}");
        assert!(n.as_u64() - raw <= q, "case {case}");
    }
}

/// Degenerate checkpoint interval of 1: every violation lands at offset
/// 0, every closed cycle is its own interval, and the statistics stay
/// exact.
#[test]
fn interval_tracker_interval_of_one() {
    for case in 0..CASES {
        let mut rng = Xoshiro256::new(0x1111 + case);
        let end = rng.next_range(50, 300);
        let n_viol = rng.next_below(50) as usize;
        let mut cycles: Vec<u64> = (0..n_viol).map(|_| rng.next_below(end)).collect();
        cycles.sort_unstable();
        cycles.dedup();

        let mut t = IntervalTracker::new(1);
        for &v in &cycles {
            t.close_intervals_up_to(Cycle::new(v));
            t.observe_violation(Cycle::new(v));
        }
        t.close_intervals_up_to(Cycle::new(end));

        assert_eq!(t.intervals_total(), end, "case {case}");
        assert_eq!(t.intervals_violating(), cycles.len() as u64, "case {case}");
        // With I = 1 the only possible offset is 0.
        assert_eq!(t.mean_first_distance(), 0.0, "case {case}");
        let f = cycles.len() as f64 / end as f64;
        assert!((t.fraction_violating() - f).abs() < 1e-12, "case {case}");
    }
}

/// The engines disable speculation by parking the next checkpoint
/// trigger at `u64::MAX`. The tracker must tolerate the same sentinel:
/// an (effectively) unreachable interval never closes and reports empty
/// statistics without overflowing, and the one violation stamp that *can*
/// reach the interval's end (`u64::MAX` itself) rolls into a successor
/// interval whose end saturates out of the cycle range.
#[test]
fn interval_tracker_unreachable_checkpoint_guard() {
    let mut t = IntervalTracker::new(u64::MAX);
    t.observe_violation(Cycle::new(0));
    t.close_intervals_up_to(Cycle::new(u64::MAX - 1));
    assert_eq!(
        t.intervals_total(),
        0,
        "the unreachable interval never closes"
    );
    assert_eq!(t.intervals_violating(), 0);
    assert_eq!(t.fraction_violating(), 0.0);
    assert_eq!(t.mean_first_distance(), 0.0);
    assert_eq!(t.current_start(), Cycle::ZERO);

    // Exactly at the interval's end: closes [0, MAX) with its distance-0
    // observation and opens [MAX, ..) whose end overflows u64 — that
    // successor can never close, and closing must not loop or wrap.
    t.observe_violation(Cycle::new(u64::MAX));
    assert_eq!(t.intervals_total(), 1);
    assert_eq!(t.intervals_violating(), 1);
    assert_eq!(t.mean_first_distance(), 0.0);
    assert_eq!(t.current_start(), Cycle::new(u64::MAX));
    t.close_intervals_up_to(Cycle::new(u64::MAX));
    assert_eq!(t.intervals_total(), 1, "overflowing interval never closes");
}

/// Rollback landing exactly on the checkpoint boundary: a violation
/// stamped at `start + I` closes the interval it overtook *clean* and is
/// attributed to the next interval at distance 0, and `reopen_current` —
/// the rollback restarting the interval — erases exactly the current
/// observation while already-closed intervals stay counted.
#[test]
fn interval_tracker_rollback_on_the_checkpoint_boundary() {
    let interval = 100u64;
    let mut t = IntervalTracker::new(interval);

    // Violation exactly at [0, 100)'s closing boundary: the first
    // interval closes clean, the stamp lands at offset 0 of [100, 200).
    t.observe_violation(Cycle::new(interval));
    t.close_intervals_up_to(Cycle::new(interval));
    assert_eq!(t.intervals_total(), 1);
    assert_eq!(t.intervals_violating(), 0, "overtaken interval is clean");

    // A rollback restarts the current interval before it closes: its
    // boundary observation is erased.
    t.reopen_current();
    t.close_intervals_up_to(Cycle::new(2 * interval));
    assert_eq!(t.intervals_total(), 2);
    assert_eq!(t.intervals_violating(), 0, "reopened interval closed clean");

    // The CC replay after the rollback re-detects on the boundary again:
    // attributed to [200, 300) at distance 0.
    t.observe_violation(Cycle::new(2 * interval));
    t.close_intervals_up_to(Cycle::new(3 * interval));
    assert_eq!(t.intervals_total(), 3);
    assert_eq!(t.intervals_violating(), 1);
    assert_eq!(t.mean_first_distance(), 0.0);
}
