//! Adaptive slack: a feedback loop on the slack bound (paper §4).
//!
//! The controller tracks the running violation rate (violations per
//! simulated cycle) over each sampling window and compares it against a
//! preset *target violation rate*. The slack bound is widened when the rate
//! is below the target (violations are infrequent, so more slack is
//! affordable) and narrowed — *slack throttling* — when above. No adjustment
//! is made while the rate stays inside the *violation band*, a hysteresis
//! range of `target × (1 ± band)`.
//!
//! Internally the controller maintains a *fractional* bound: the published
//! integer bound is its floor, so a fractional value of 1.3 duty-cycles
//! between bounds 1 and 2 as it drifts. This gives the feedback loop a
//! smooth dial even though the smallest slack step (one cycle) can sit far
//! above a low target rate — the bound dwells at the violation-free
//! minimum most of the time and probes larger slack at a duty cycle
//! proportional to the target.

use crate::persist::{ByteReader, ByteWriter, PersistError};
use crate::scheme::{PaceSample, Pacer};
use crate::time::Cycle;

/// How the bound moves when an adjustment is warranted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StepPolicy {
    /// Additive increase by `up`, additive decrease by `down` (cycles per
    /// sampling window; fractions accumulate).
    Additive {
        /// Cycles added to the bound on increase.
        up: f64,
        /// Cycles removed from the bound on decrease.
        down: f64,
    },
    /// Additive increase by `up`, multiplicative decrease by halving —
    /// the classic AIMD rule; reacts fast to violation bursts.
    Aimd {
        /// Cycles added to the bound on increase.
        up: f64,
    },
    /// Multiplicative: bound doubles on increase and halves on decrease.
    /// Converges fast but oscillates more.
    Multiplicative,
    /// Error-proportional (default): the bound moves by
    /// `step × clamp((target − rate) / target, −max_throttle, 1)` per
    /// window. Overshooting the target by a large factor therefore
    /// throttles proportionally harder than a quiet window widens, letting
    /// the loop settle at duty cycles (and thus mean rates) far below the
    /// rate of the smallest violating bound.
    Proportional {
        /// Cycles moved per unit of relative error.
        step: f64,
        /// Clamp on the negative relative error (how much harder
        /// throttling may push than widening).
        max_throttle: f64,
    },
}

impl Default for StepPolicy {
    fn default() -> Self {
        StepPolicy::Proportional {
            step: 0.5,
            max_throttle: 32.0,
        }
    }
}

/// Configuration of the adaptive-slack controller.
///
/// The paper's experiments use target violation rates from 0.01% to 0.20%
/// (expressed here as fractions: `1e-4` to `2e-3`) and violation bands of
/// 0% and 5%.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveConfig {
    /// Target violation rate in violations per simulated cycle
    /// (e.g. `1e-4` for the paper's 0.01%).
    pub target_rate: f64,
    /// Hysteresis half-width as a fraction of the target (0.05 = the
    /// paper's "5% violation band"). No adjustment happens while the
    /// measured rate is within `target × (1 ± band)`.
    pub band: f64,
    /// Slack bound at simulation start.
    pub initial_bound: u64,
    /// Lowest admissible bound (paper: the bound is decreased "until it
    /// reaches the lowest possible value").
    pub min_bound: u64,
    /// Highest admissible bound.
    pub max_bound: u64,
    /// Length of each sampling window in simulated (global) cycles.
    pub sample_period: u64,
    /// Bound adjustment rule.
    pub step: StepPolicy,
}

impl AdaptiveConfig {
    /// Convenience constructor from a target rate expressed in percent
    /// (`0.01` → one violation per 10 000 cycles) and a band in percent.
    ///
    /// # Examples
    ///
    /// ```
    /// use slacksim_core::scheme::AdaptiveConfig;
    ///
    /// let cfg = AdaptiveConfig::percent(0.01, 5.0);
    /// assert!((cfg.target_rate - 1e-4).abs() < 1e-12);
    /// assert!((cfg.band - 0.05).abs() < 1e-12);
    /// ```
    pub fn percent(target_percent: f64, band_percent: f64) -> Self {
        AdaptiveConfig {
            target_rate: target_percent / 100.0,
            band: band_percent / 100.0,
            ..AdaptiveConfig::default()
        }
    }
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            target_rate: 1e-4,
            band: 0.05,
            initial_bound: 4,
            min_bound: 1,
            max_bound: 256,
            sample_period: 1024,
            step: StepPolicy::default(),
        }
    }
}

/// The adaptive-slack pacer: bounded slack whose bound follows the
/// feedback rule of [`AdaptiveConfig`].
///
/// # Examples
///
/// ```
/// use slacksim_core::scheme::{AdaptiveConfig, AdaptiveController, PaceSample, Pacer};
/// use slacksim_core::time::Cycle;
///
/// let mut ctl = AdaptiveController::new(AdaptiveConfig::default());
/// let before = ctl.fractional_bound();
/// // A quiet window (no violations) widens the bound.
/// ctl.on_sample(&PaceSample {
///     global: Cycle::new(1024),
///     window_cycles: 1024,
///     window_violations: 0,
/// });
/// assert!(ctl.fractional_bound() > before);
/// ```
#[derive(Debug, Clone)]
pub struct AdaptiveController {
    cfg: AdaptiveConfig,
    bound: f64,
    adjustments_up: u64,
    adjustments_down: u64,
    samples: u64,
    trace: Vec<(Cycle, u64)>,
}

impl AdaptiveController {
    /// Creates a controller at the configured initial bound.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (`min_bound` of 0,
    /// `min_bound > max_bound`, non-positive target rate, negative band, or
    /// a zero sample period).
    pub fn new(cfg: AdaptiveConfig) -> Self {
        assert!(cfg.min_bound >= 1, "min_bound must be at least 1");
        assert!(
            cfg.min_bound <= cfg.max_bound,
            "min_bound must not exceed max_bound"
        );
        assert!(cfg.target_rate > 0.0, "target rate must be positive");
        assert!(cfg.band >= 0.0, "violation band must be non-negative");
        assert!(cfg.sample_period >= 1, "sample period must be at least 1");
        let bound = (cfg.initial_bound as f64).clamp(cfg.min_bound as f64, cfg.max_bound as f64);
        AdaptiveController {
            cfg,
            bound,
            adjustments_up: 0,
            adjustments_down: 0,
            samples: 0,
            trace: Vec::new(),
        }
    }

    /// The controller's configuration.
    pub fn config(&self) -> &AdaptiveConfig {
        &self.cfg
    }

    /// The internal fractional bound (the published bound is its floor).
    pub fn fractional_bound(&self) -> f64 {
        self.bound
    }

    /// Number of widening adjustments performed so far.
    pub fn adjustments_up(&self) -> u64 {
        self.adjustments_up
    }

    /// Number of throttling adjustments performed so far.
    pub fn adjustments_down(&self) -> u64 {
        self.adjustments_down
    }

    /// Number of samples observed so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// History of `(global time, bound)` recorded at every sample.
    pub fn trace(&self) -> &[(Cycle, u64)] {
        &self.trace
    }

    /// Lower clamp of the fractional bound. The proportional policy may
    /// drive it below `min_bound` (throttling "debt"): the published bound
    /// stays at the minimum while the debt is paid off by quiet windows,
    /// which is what lets mean rates settle proportionally to targets far
    /// below the rate of the smallest violating bound (anti-windup is the
    /// debt cap itself).
    fn floor(&self) -> f64 {
        match self.cfg.step {
            StepPolicy::Proportional { step, max_throttle } => {
                self.cfg.min_bound as f64 - step * max_throttle
            }
            _ => self.cfg.min_bound as f64,
        }
    }

    fn apply(&mut self, delta: f64) {
        let next = (self.bound + delta).clamp(self.floor(), self.cfg.max_bound as f64);
        if next > self.bound {
            self.adjustments_up += 1;
        } else if next < self.bound {
            self.adjustments_down += 1;
        }
        self.bound = next;
    }

    fn integer_bound(&self) -> u64 {
        if self.bound < self.cfg.min_bound as f64 {
            return self.cfg.min_bound;
        }
        (self.bound.floor() as u64).clamp(self.cfg.min_bound, self.cfg.max_bound)
    }
}

impl Pacer for AdaptiveController {
    fn window_end(&self, global: Cycle) -> Cycle {
        global.saturating_add(self.integer_bound())
    }

    fn on_sample(&mut self, sample: &PaceSample) {
        self.samples += 1;
        let rate = sample.rate();
        let target = self.cfg.target_rate;
        let hi = target * (1.0 + self.cfg.band);
        let lo = target * (1.0 - self.cfg.band);
        if rate > hi {
            // Throttle.
            let delta = match self.cfg.step {
                StepPolicy::Additive { down, .. } => -down,
                StepPolicy::Aimd { .. } | StepPolicy::Multiplicative => -self.bound / 2.0,
                StepPolicy::Proportional { step, max_throttle } => {
                    step * ((target - rate) / target).max(-max_throttle)
                }
            };
            self.apply(delta);
        } else if rate < lo {
            // Widen.
            let delta = match self.cfg.step {
                StepPolicy::Additive { up, .. } | StepPolicy::Aimd { up } => up,
                StepPolicy::Multiplicative => self.bound,
                StepPolicy::Proportional { step, .. } => {
                    step * (((target - rate) / target).min(1.0))
                }
            };
            self.apply(delta);
        }
        self.trace.push((sample.global, self.integer_bound()));
    }

    fn current_bound(&self) -> Option<u64> {
        Some(self.integer_bound())
    }

    fn scheme_name(&self) -> &'static str {
        "adaptive-slack"
    }

    fn clone_box(&self) -> Box<dyn Pacer> {
        Box::new(self.clone())
    }

    fn save_state(&self, w: &mut ByteWriter) {
        w.f64(self.bound);
        w.u64(self.adjustments_up);
        w.u64(self.adjustments_down);
        w.u64(self.samples);
        w.u32(self.trace.len() as u32);
        for &(cycle, bound) in &self.trace {
            w.u64(cycle.as_u64());
            w.u64(bound);
        }
    }

    fn load_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), PersistError> {
        self.bound = r.f64()?;
        if !self.bound.is_finite() {
            return Err(PersistError::Corrupt("non-finite adaptive bound"));
        }
        self.adjustments_up = r.u64()?;
        self.adjustments_down = r.u64()?;
        self.samples = r.u64()?;
        let n = r.u32()? as usize;
        self.trace = (0..n)
            .map(|_| Ok((Cycle::new(r.u64()?), r.u64()?)))
            .collect::<Result<_, PersistError>>()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(cycles: u64, violations: u64) -> PaceSample {
        PaceSample {
            global: Cycle::new(cycles),
            window_cycles: cycles,
            window_violations: violations,
        }
    }

    fn controller(target: f64, band: f64, step: StepPolicy) -> AdaptiveController {
        AdaptiveController::new(AdaptiveConfig {
            target_rate: target,
            band,
            initial_bound: 16,
            min_bound: 1,
            max_bound: 256,
            sample_period: 1000,
            step,
        })
    }

    #[test]
    fn quiet_windows_widen_the_bound() {
        let mut c = controller(1e-4, 0.0, StepPolicy::Additive { up: 4.0, down: 4.0 });
        c.on_sample(&sample(1000, 0));
        assert_eq!(c.current_bound(), Some(20));
        assert_eq!(c.adjustments_up(), 1);
        assert_eq!(c.adjustments_down(), 0);
    }

    #[test]
    fn noisy_windows_throttle_the_bound() {
        let mut c = controller(1e-4, 0.0, StepPolicy::Additive { up: 4.0, down: 4.0 });
        c.on_sample(&sample(1000, 100));
        assert_eq!(c.current_bound(), Some(12));
        assert_eq!(c.adjustments_down(), 1);
    }

    #[test]
    fn band_suppresses_adjustment() {
        // target 0.1/cycle, band 5% → no move while rate in [0.095, 0.105].
        let mut c = controller(0.1, 0.05, StepPolicy::Additive { up: 4.0, down: 4.0 });
        c.on_sample(&sample(1000, 100)); // rate exactly on target
        c.on_sample(&sample(1000, 104)); // inside band
        c.on_sample(&sample(1000, 96)); // inside band
        assert_eq!(c.current_bound(), Some(16));
        assert_eq!(c.adjustments_up() + c.adjustments_down(), 0);
        c.on_sample(&sample(1000, 110)); // above band
        assert_eq!(c.current_bound(), Some(12));
    }

    #[test]
    fn zero_band_reacts_to_any_deviation() {
        let mut c = controller(0.1, 0.0, StepPolicy::Additive { up: 1.0, down: 1.0 });
        c.on_sample(&sample(1000, 101));
        assert_eq!(c.current_bound(), Some(15));
        c.on_sample(&sample(1000, 99));
        assert_eq!(c.current_bound(), Some(16));
        // Exactly on target: no adjustment even with zero band.
        c.on_sample(&sample(1000, 100));
        assert_eq!(c.current_bound(), Some(16));
    }

    #[test]
    fn bound_respects_min_and_max() {
        let mut c = controller(1e-6, 0.0, StepPolicy::Multiplicative);
        for _ in 0..64 {
            c.on_sample(&sample(1000, 1000)); // violent throttling
        }
        assert_eq!(c.current_bound(), Some(1));
        for _ in 0..64 {
            c.on_sample(&sample(1_000_000_000, 0)); // violent widening
        }
        assert_eq!(c.current_bound(), Some(256));
    }

    #[test]
    fn aimd_halves_on_throttle() {
        let mut c = controller(1e-4, 0.0, StepPolicy::Aimd { up: 4.0 });
        c.on_sample(&sample(1000, 50));
        assert_eq!(c.current_bound(), Some(8));
        c.on_sample(&sample(1000, 50));
        assert_eq!(c.current_bound(), Some(4));
    }

    #[test]
    fn proportional_throttles_harder_on_larger_overshoot() {
        let mut a = controller(1e-3, 0.0, StepPolicy::default());
        let mut b = controller(1e-3, 0.0, StepPolicy::default());
        a.on_sample(&sample(1000, 2)); // 2× target
        b.on_sample(&sample(1000, 64)); // 64× target
        assert!(b.fractional_bound() < a.fractional_bound());
    }

    #[test]
    fn proportional_widening_is_capped_at_one_step() {
        let mut c = controller(
            1e-3,
            0.0,
            StepPolicy::Proportional {
                step: 0.5,
                max_throttle: 64.0,
            },
        );
        let before = c.fractional_bound();
        c.on_sample(&sample(1_000_000, 0)); // infinitely quiet
        assert!((c.fractional_bound() - before - 0.5).abs() < 1e-9);
    }

    #[test]
    fn proportional_duty_cycles_below_the_smallest_violating_bound() {
        // Emulate a system where bound 1 yields zero violations and any
        // larger bound yields a rate 100× the target: the loop must dwell
        // at bound 1 most of the time.
        let mut c = AdaptiveController::new(AdaptiveConfig {
            target_rate: 1e-4,
            band: 0.05,
            initial_bound: 1,
            min_bound: 1,
            max_bound: 256,
            sample_period: 1000,
            step: StepPolicy::default(),
        });
        let mut at_one = 0u32;
        let n = 2000;
        for _ in 0..n {
            let violations = if c.current_bound() == Some(1) { 0 } else { 10 };
            c.on_sample(&sample(1000, violations));
            if c.current_bound() == Some(1) {
                at_one += 1;
            }
        }
        let duty = 1.0 - f64::from(at_one) / f64::from(n);
        assert!(
            duty < 0.06,
            "loop must probe larger bounds rarely, duty={duty}"
        );
        assert!(duty > 0.0, "loop must still probe occasionally");
    }

    #[test]
    fn trace_records_every_sample() {
        let mut c = controller(1e-4, 0.0, StepPolicy::default());
        for i in 1..=5u64 {
            c.on_sample(&PaceSample {
                global: Cycle::new(i * 1000),
                window_cycles: 1000,
                window_violations: 0,
            });
        }
        assert_eq!(c.trace().len(), 5);
        assert_eq!(c.samples(), 5);
        assert!(c.trace().windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn initial_bound_is_clamped() {
        let c = AdaptiveController::new(AdaptiveConfig {
            initial_bound: 10_000,
            max_bound: 64,
            ..AdaptiveConfig::default()
        });
        assert_eq!(c.current_bound(), Some(64));
    }

    #[test]
    #[should_panic(expected = "min_bound must not exceed max_bound")]
    fn inconsistent_bounds_rejected() {
        let _ = AdaptiveController::new(AdaptiveConfig {
            min_bound: 100,
            max_bound: 10,
            ..AdaptiveConfig::default()
        });
    }

    #[test]
    #[should_panic(expected = "target rate must be positive")]
    fn zero_target_rejected() {
        let _ = AdaptiveController::new(AdaptiveConfig {
            target_rate: 0.0,
            ..AdaptiveConfig::default()
        });
    }

    #[test]
    fn percent_constructor() {
        let cfg = AdaptiveConfig::percent(0.2, 0.0);
        assert!((cfg.target_rate - 0.002).abs() < 1e-12);
        assert_eq!(cfg.band, 0.0);
    }

    #[test]
    fn window_end_uses_current_bound() {
        let mut c = controller(1e-4, 0.0, StepPolicy::Additive { up: 4.0, down: 4.0 });
        assert_eq!(c.window_end(Cycle::new(100)), Cycle::new(116));
        c.on_sample(&sample(1000, 0));
        assert_eq!(c.window_end(Cycle::new(100)), Cycle::new(120));
    }
}
