//! Under cycle-by-cycle pacing, the threaded engine (one host thread per
//! target core) and the deterministic sequential engine must produce
//! bit-identical statistics: the barrier protocol fully determinises the
//! parallel execution.

use slacksim::scheme::Scheme;
use slacksim::{Benchmark, EngineKind, Simulation};

fn run(benchmark: Benchmark, engine: EngineKind, commit: u64) -> slacksim::SimReport {
    Simulation::new(benchmark)
        .commit_target(commit)
        .scheme(Scheme::CycleByCycle)
        .engine(engine)
        .run()
        .expect("run succeeds")
}

#[test]
fn threaded_cc_matches_sequential_cc_exactly() {
    for benchmark in Benchmark::ALL {
        let seq = run(benchmark, EngineKind::Sequential, 40_000);
        let thr = run(benchmark, EngineKind::Threaded, 40_000);
        assert_eq!(seq.global_cycles, thr.global_cycles, "{benchmark}: cycles");
        assert_eq!(seq.committed, thr.committed, "{benchmark}: committed");
        assert_eq!(seq.violations, thr.violations, "{benchmark}: violations");
        assert_eq!(seq.per_core, thr.per_core, "{benchmark}: per-core stats");
        assert_eq!(seq.uncore, thr.uncore, "{benchmark}: uncore stats");
    }
}

#[test]
fn threaded_cc_is_repeatable() {
    let a = run(Benchmark::Lu, EngineKind::Threaded, 30_000);
    let b = run(Benchmark::Lu, EngineKind::Threaded, 30_000);
    assert_eq!(a.global_cycles, b.global_cycles);
    assert_eq!(a.per_core, b.per_core);
    assert_eq!(a.uncore, b.uncore);
}

#[test]
fn threaded_slack_run_completes_with_sane_stats() {
    // Slack runs are host-nondeterministic by design; assert invariants,
    // not exact values.
    let r = Simulation::new(Benchmark::WaterNsquared)
        .commit_target(60_000)
        .scheme(Scheme::BoundedSlack { bound: 8 })
        .engine(EngineKind::Threaded)
        .run()
        .expect("run succeeds");
    assert!(r.committed >= 60_000);
    assert!(r.global_cycles > 0);
    assert_eq!(r.core_total("committed"), r.committed);
    assert!(r.uncore.get("bus_transactions") > 0);
}

#[test]
fn threaded_unbounded_slack_completes() {
    let r = Simulation::new(Benchmark::Fft)
        .commit_target(60_000)
        .scheme(Scheme::UnboundedSlack)
        .engine(EngineKind::Threaded)
        .run()
        .expect("run succeeds");
    assert!(r.committed >= 60_000);
}
