//! Campaign-level heartbeats: one JSON line per beat describing fleet
//! progress, emitted on a host-time cadence while a sweep runs.
//!
//! Mirrors the per-run emitter in [`obs::live`](crate::obs::live) — same
//! sink vocabulary ([`LiveConfig`]: stderr / atomically-replaced status
//! file / in-process capture), same detached-observer-thread shape, same
//! single-line versioned-JSON discipline, same guaranteed terminal beat —
//! but reads a [`CampaignStats`] block of job-level gauges instead of
//! engine cycle counters. The discriminating field is `"campaign":true`,
//! which is how `slacksim report` tells a campaign heartbeat from an
//! engine heartbeat before choosing a renderer.
//!
//! Workers publish with one relaxed atomic increment per job transition;
//! the emitter never takes a lock shared with workers and never registers
//! with the host scheduler, so conformance runs are unperturbed.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::obs::live::{emit, write_f64, LiveConfig, HEARTBEAT_VERSION};

/// Job-level gauges the sweep runner publishes and the emitter reads.
/// All accesses are relaxed; each gauge is independent and a slightly
/// stale read only ages one beat.
#[derive(Debug, Default)]
pub struct CampaignStats {
    /// Grid size (set once before workers start).
    pub total: AtomicU64,
    /// Jobs finished successfully this process (excludes `skipped`).
    pub done: AtomicU64,
    /// Jobs that failed terminally.
    pub failed: AtomicU64,
    /// Jobs running right now.
    pub running: AtomicU64,
    /// High-water mark of `running` (the backpressure witness: never
    /// exceeds the worker count).
    pub max_running: AtomicU64,
    /// Jobs resumed from a durable checkpoint instead of starting fresh.
    pub resumed: AtomicU64,
    /// Jobs skipped because a finished report already existed on disk.
    pub skipped: AtomicU64,
}

impl CampaignStats {
    /// Creates a zeroed stats block.
    pub fn new() -> Self {
        CampaignStats::default()
    }

    /// Marks one job started: bumps `running` and folds the new depth
    /// into `max_running`.
    pub fn job_started(&self) {
        let now = self.running.fetch_add(1, Ordering::SeqCst) + 1;
        self.max_running.fetch_max(now, Ordering::SeqCst);
    }

    /// Marks one job finished (successfully or not).
    pub fn job_finished(&self, ok: bool) {
        self.running.fetch_sub(1, Ordering::SeqCst);
        if ok {
            self.done.fetch_add(1, Ordering::Relaxed);
        } else {
            self.failed.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Handle to a running campaign emitter; [`finish`](Self::finish) (or
/// drop) emits the terminal beat and joins.
#[derive(Debug)]
pub struct CampaignLiveHandle {
    stop: Arc<AtomicBool>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl CampaignLiveHandle {
    /// Signals the emitter to write one final beat and joins it.
    pub fn finish(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        if let Some(join) = self.join.take() {
            self.stop.store(true, Ordering::Release);
            join.thread().unpark();
            let _ = join.join();
        }
    }
}

impl Drop for CampaignLiveHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Spawns the campaign emitter thread; no-op handle when `cfg` has no
/// sink.
pub fn spawn(cfg: LiveConfig, stats: Arc<CampaignStats>) -> CampaignLiveHandle {
    let stop = Arc::new(AtomicBool::new(false));
    if !cfg.has_sink() {
        return CampaignLiveHandle { stop, join: None };
    }
    let stop2 = Arc::clone(&stop);
    let join = std::thread::Builder::new()
        .name("slacksim-campaign-live".into())
        .spawn(move || emitter_loop(cfg, stats, stop2))
        .expect("spawn campaign live emitter thread");
    CampaignLiveHandle {
        stop,
        join: Some(join),
    }
}

fn emitter_loop(cfg: LiveConfig, stats: Arc<CampaignStats>, stop: Arc<AtomicBool>) {
    let start = Instant::now();
    let every = cfg.cadence();
    let tmp_path = cfg.path.as_ref().map(|p| {
        let mut tmp = p.as_os_str().to_owned();
        tmp.push(".tmp");
        PathBuf::from(tmp)
    });
    let mut buf = String::with_capacity(512);
    let mut next = start + every;
    loop {
        let stopping = stop.load(Ordering::Acquire);
        let now = Instant::now();
        if stopping || now >= next {
            render_campaign_heartbeat(&mut buf, start, &stats);
            emit(&cfg, tmp_path.as_deref(), &buf);
            if stopping {
                return;
            }
            next = now + every;
        }
        let now = Instant::now();
        if now < next && !stop.load(Ordering::Acquire) {
            std::thread::park_timeout(next - now);
        }
    }
}

/// Writes one `\n`-terminated campaign heartbeat into `buf` (replacing
/// its contents).
pub fn render_campaign_heartbeat(buf: &mut String, start: Instant, stats: &CampaignStats) {
    let now = Instant::now();
    let elapsed_ms = now.duration_since(start).as_millis() as u64;
    let total = stats.total.load(Ordering::Relaxed);
    let done = stats.done.load(Ordering::Relaxed);
    let failed = stats.failed.load(Ordering::Relaxed);
    let skipped = stats.skipped.load(Ordering::Relaxed);
    let settled = done + failed + skipped;
    let progress = if total > 0 {
        (settled as f64 / total as f64).min(1.0)
    } else {
        0.0
    };
    // Rate and ETA count only jobs *this process* finished: `skipped`
    // jobs were settled by an earlier (killed) process, so folding them
    // into the rate would fabricate throughput the host never delivered.
    let elapsed_s = now.duration_since(start).as_secs_f64();
    let jobs_per_sec = if elapsed_s > 0.0 {
        (done + failed) as f64 / elapsed_s
    } else {
        0.0
    };
    let remaining = total.saturating_sub(settled);
    let eta_ms = if jobs_per_sec > 0.0 && remaining > 0 {
        // Guard the cast: early beats can see a rate small enough that
        // the product leaves u64 range, and a saturating cast would
        // report u64::MAX ms as if it were a real estimate.
        let ms = remaining as f64 / jobs_per_sec * 1000.0;
        (ms.is_finite() && ms < u64::MAX as f64).then_some(ms as u64)
    } else {
        None
    };

    buf.clear();
    let _ = write!(
        buf,
        r#"{{"v":{HEARTBEAT_VERSION},"campaign":true,"elapsed_ms":{elapsed_ms},"total":{total},"done":{done},"failed":{failed},"skipped":{skipped},"running":{},"max_running":{},"resumed":{},"progress":"#,
        stats.running.load(Ordering::Relaxed),
        stats.max_running.load(Ordering::Relaxed),
        stats.resumed.load(Ordering::Relaxed),
    );
    write_f64(buf, progress);
    buf.push_str(r#","jobs_per_sec":"#);
    write_f64(buf, jobs_per_sec);
    buf.push_str(r#","eta_ms":"#);
    match eta_ms {
        Some(ms) => {
            let _ = write!(buf, "{ms}");
        }
        None => buf.push_str("null"),
    }
    buf.push_str("}\n");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::json::Json;
    use std::sync::Mutex;
    use std::time::Duration;

    fn demo_stats() -> Arc<CampaignStats> {
        let stats = Arc::new(CampaignStats::new());
        stats.total.store(24, Ordering::Relaxed);
        stats.done.store(5, Ordering::Relaxed);
        stats.failed.store(1, Ordering::Relaxed);
        stats.skipped.store(6, Ordering::Relaxed);
        stats.resumed.store(2, Ordering::Relaxed);
        stats.running.store(3, Ordering::Relaxed);
        stats.max_running.store(3, Ordering::Relaxed);
        stats
    }

    #[test]
    fn campaign_heartbeat_is_valid_flagged_json() {
        let stats = demo_stats();
        let mut buf = String::new();
        render_campaign_heartbeat(&mut buf, Instant::now(), &stats);
        assert!(buf.ends_with('\n'));
        assert_eq!(buf.lines().count(), 1);
        let v = Json::parse(buf.trim_end()).expect("valid JSON beat");
        assert_eq!(
            v.get("v").and_then(Json::as_f64),
            Some(HEARTBEAT_VERSION as f64)
        );
        assert_eq!(v.get("campaign").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("total").and_then(Json::as_f64), Some(24.0));
        assert_eq!(v.get("done").and_then(Json::as_f64), Some(5.0));
        assert_eq!(v.get("skipped").and_then(Json::as_f64), Some(6.0));
        assert_eq!(v.get("max_running").and_then(Json::as_f64), Some(3.0));
        let progress = v.get("progress").and_then(Json::as_f64).unwrap();
        assert!((progress - 0.5).abs() < 1e-9, "12 of 24 settled");
    }

    #[test]
    fn start_and_finish_transitions_track_high_water() {
        let stats = CampaignStats::new();
        stats.job_started();
        stats.job_started();
        stats.job_finished(true);
        stats.job_started();
        stats.job_finished(false);
        stats.job_finished(true);
        assert_eq!(stats.running.load(Ordering::SeqCst), 0);
        assert_eq!(stats.max_running.load(Ordering::SeqCst), 2);
        assert_eq!(stats.done.load(Ordering::SeqCst), 2);
        assert_eq!(stats.failed.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn emitter_beats_and_emits_terminal_beat() {
        let capture = Arc::new(Mutex::new(String::new()));
        let cfg = LiveConfig::new()
            .every(Duration::from_millis(5))
            .to_capture(Arc::clone(&capture));
        let stats = demo_stats();
        let handle = spawn(cfg, Arc::clone(&stats));
        std::thread::sleep(Duration::from_millis(30));
        stats.done.store(18, Ordering::Relaxed);
        handle.finish();
        let out = capture.lock().unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert!(!lines.is_empty());
        for line in &lines {
            let v = Json::parse(line).expect("every beat parses");
            assert_eq!(v.get("campaign").and_then(Json::as_bool), Some(true));
        }
        let last = Json::parse(lines.last().unwrap()).unwrap();
        assert_eq!(last.get("done").and_then(Json::as_f64), Some(18.0));
    }

    #[test]
    fn sinkless_config_spawns_nothing() {
        let handle = spawn(LiveConfig::new(), Arc::new(CampaignStats::new()));
        handle.finish();
    }
}
