//! Simulated-time primitives.
//!
//! Slack simulation distinguishes *simulated time* (target clock cycles,
//! represented by [`Cycle`]) from *simulation time* (host wall-clock time).
//! Every clock in the kernel — a core thread's local time, its max local
//! time, and the global time — is a [`Cycle`].

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A point in simulated time, measured in target clock cycles since the
/// beginning of the simulation.
///
/// `Cycle` is a transparent newtype over `u64`. It supports the arithmetic
/// a simulator needs (`+ u64`, `- u64`, differences between two `Cycle`s)
/// while statically preventing accidental mixing with other integer
/// quantities such as instruction counts.
///
/// # Examples
///
/// ```
/// use slacksim_core::time::Cycle;
///
/// let start = Cycle::ZERO;
/// let later = start + 8;
/// assert_eq!(later.as_u64(), 8);
/// assert_eq!(later - start, 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(u64);

impl Cycle {
    /// The first cycle of a simulation.
    pub const ZERO: Cycle = Cycle(0);

    /// The largest representable cycle, used as the "no bound" cap by the
    /// unbounded-slack pacer.
    pub const MAX: Cycle = Cycle(u64::MAX);

    /// Creates a cycle from a raw count.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Cycle(raw)
    }

    /// Returns the raw cycle count.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Saturating addition of a delta in cycles.
    #[inline]
    #[must_use]
    pub const fn saturating_add(self, delta: u64) -> Self {
        Cycle(self.0.saturating_add(delta))
    }

    /// Saturating difference between two points in time (0 if `other` is
    /// later than `self`).
    #[inline]
    #[must_use]
    pub const fn saturating_sub(self, other: Cycle) -> u64 {
        self.0.saturating_sub(other.0)
    }

    /// Rounds this cycle *up* to the next strictly greater multiple of
    /// `quantum`. Used by the quantum pacer and checkpoint scheduler.
    ///
    /// # Panics
    ///
    /// Panics if `quantum` is zero.
    #[must_use]
    pub fn next_multiple_of(self, quantum: u64) -> Cycle {
        assert!(quantum > 0, "quantum must be non-zero");
        Cycle((self.0 / quantum + 1).saturating_mul(quantum))
    }

    /// Returns the larger of two cycles.
    #[inline]
    #[must_use]
    pub fn max(self, other: Cycle) -> Cycle {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two cycles.
    #[inline]
    #[must_use]
    pub fn min(self, other: Cycle) -> Cycle {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for Cycle {
    fn from(raw: u64) -> Self {
        Cycle(raw)
    }
}

impl From<Cycle> for u64 {
    fn from(c: Cycle) -> Self {
        c.0
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;

    #[inline]
    fn add(self, delta: u64) -> Cycle {
        Cycle(self.0 + delta)
    }
}

impl AddAssign<u64> for Cycle {
    #[inline]
    fn add_assign(&mut self, delta: u64) {
        self.0 += delta;
    }
}

impl Sub<u64> for Cycle {
    type Output = Cycle;

    #[inline]
    fn sub(self, delta: u64) -> Cycle {
        Cycle(self.0 - delta)
    }
}

impl SubAssign<u64> for Cycle {
    #[inline]
    fn sub_assign(&mut self, delta: u64) {
        self.0 -= delta;
    }
}

impl Sub<Cycle> for Cycle {
    type Output = u64;

    /// Difference in cycles between two points in time.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `other` is later than `self`.
    #[inline]
    fn sub(self, other: Cycle) -> u64 {
        self.0 - other.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_default() {
        assert_eq!(Cycle::default(), Cycle::ZERO);
        assert_eq!(Cycle::ZERO.as_u64(), 0);
    }

    #[test]
    fn add_and_sub_deltas() {
        let c = Cycle::new(10);
        assert_eq!((c + 5).as_u64(), 15);
        assert_eq!((c - 5).as_u64(), 5);
        let mut m = c;
        m += 1;
        m -= 2;
        assert_eq!(m.as_u64(), 9);
    }

    #[test]
    fn difference_between_cycles() {
        assert_eq!(Cycle::new(100) - Cycle::new(40), 60);
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(Cycle::MAX.saturating_add(1), Cycle::MAX);
        assert_eq!(Cycle::new(3).saturating_sub(Cycle::new(10)), 0);
        assert_eq!(Cycle::new(10).saturating_sub(Cycle::new(3)), 7);
    }

    #[test]
    fn next_multiple_rounds_strictly_up() {
        assert_eq!(Cycle::new(0).next_multiple_of(10), Cycle::new(10));
        assert_eq!(Cycle::new(9).next_multiple_of(10), Cycle::new(10));
        assert_eq!(Cycle::new(10).next_multiple_of(10), Cycle::new(20));
        assert_eq!(Cycle::new(11).next_multiple_of(10), Cycle::new(20));
    }

    #[test]
    #[should_panic(expected = "quantum must be non-zero")]
    fn next_multiple_rejects_zero() {
        let _ = Cycle::new(1).next_multiple_of(0);
    }

    #[test]
    fn ordering_and_min_max() {
        let a = Cycle::new(3);
        let b = Cycle::new(7);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn conversions() {
        let c: Cycle = 42u64.into();
        let raw: u64 = c.into();
        assert_eq!(raw, 42);
        assert_eq!(format!("{c}"), "42");
    }
}
