//! Extension E11: Graphite-style Lax-P2P synchronisation (paper §6)
//! compared against bounded and unbounded slack.

use slacksim_bench::experiments::ext;
use slacksim_bench::scale::Scale;
use slacksim_workloads::Benchmark;

fn main() {
    let scale = Scale::from_env(200_000);
    for benchmark in [Benchmark::Fft, Benchmark::Barnes] {
        let rows = ext::measure_p2p(&scale, benchmark);
        println!("{}", ext::render_p2p(benchmark, &rows));
    }
}
