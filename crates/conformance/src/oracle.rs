//! The differential oracle: cross-engine equivalence checks, metamorphic
//! invariants, and the greedy failure minimizer.
//!
//! Three layers of checking, from strongest to weakest guarantee:
//!
//! 1. **Exact equality** where the design guarantees it: cycle-by-cycle
//!    runs must produce identical [`Fingerprint`]s across the sequential
//!    engine, the native threaded engine, and every virtual schedule —
//!    with a barrier after every cycle the host interleaving cannot
//!    matter.
//! 2. **Metamorphic invariants** everywhere else ([`check_invariants`]):
//!    commit conservation, observation-counter consistency, and
//!    violations monotone non-decreasing in the slack bound.
//! 3. **Schedule diagnostics**: any virtual run of the unmutated
//!    protocol must finish with [`SchedDiag::lost_wakeups`]` == 0`.
//!
//! When a check fails, [`shrink`] minimizes the case and the test prints
//! the one-line repro (see [`crate::repro`]).

use std::sync::Arc;

use slacksim::scheme::Scheme;
use slacksim::{
    Benchmark, EngineKind, SchedRef, SimReport, Simulation, SpeculationConfig, UncoreKind,
};

use crate::repro::VirtCase;
use crate::vsched::{SchedDiag, VirtualSched};

/// The schedule-independent observable outcome of one run: everything a
/// correct engine must reproduce exactly, and nothing (wall time, obs
/// samples) it legitimately may not.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fingerprint {
    /// Final global (slowest-core) cycle count.
    pub global_cycles: u64,
    /// Aggregate committed instructions.
    pub committed: u64,
    /// Total timing violations detected.
    pub violations: u64,
    /// Committed instructions per core.
    pub per_core_committed: Vec<u64>,
    /// Local cycles per core.
    pub per_core_cycles: Vec<u64>,
    /// Uncore interconnect transactions: snooping-bus grants plus
    /// directory-bank transactions. Whichever interconnect a run does
    /// not use contributes zero, so the same fingerprint covers both
    /// uncores.
    pub interconnect_transactions: u64,
}

/// Extracts the [`Fingerprint`] of a finished run.
pub fn fingerprint(report: &SimReport) -> Fingerprint {
    Fingerprint {
        global_cycles: report.global_cycles,
        committed: report.committed,
        violations: report.violations.total(),
        per_core_committed: report.per_core.iter().map(|c| c.get("committed")).collect(),
        per_core_cycles: report.per_core.iter().map(|c| c.get("cycles")).collect(),
        interconnect_transactions: report.uncore.get("bus_transactions")
            + report.uncore.get("dir_transactions"),
    }
}

/// Runs one configuration on the given engine with the native host
/// scheduler.
///
/// # Panics
///
/// Panics if the engine reports an error — in the conformance harness
/// every configured case is expected to complete.
pub fn run_engine(
    bench: Benchmark,
    cores: usize,
    scheme: &Scheme,
    target: u64,
    seed: u64,
    engine: EngineKind,
) -> SimReport {
    run_engine_on(UncoreKind::Bus, bench, cores, scheme, target, seed, engine)
}

/// [`run_engine`] with an explicit uncore interconnect — the directory
/// rows of the conformance matrix run through this (the bus caps out at
/// 16 cores).
///
/// # Panics
///
/// Panics if the engine reports an error.
pub fn run_engine_on(
    uncore: UncoreKind,
    bench: Benchmark,
    cores: usize,
    scheme: &Scheme,
    target: u64,
    seed: u64,
    engine: EngineKind,
) -> SimReport {
    Simulation::new(bench)
        .uncore(uncore)
        .cores(cores)
        .scheme(scheme.clone())
        .engine(engine)
        .commit_target(target)
        .seed(seed)
        .run()
        .unwrap_or_else(|e| {
            panic!("{engine:?} run failed for {bench:?}/{uncore}/{cores} cores: {e}")
        })
}

/// [`run_engine_on`] on the threaded engine with a `shards`-way manager
/// tree — the sharded rows of the conformance matrix run through this.
///
/// # Panics
///
/// Panics if the engine reports an error.
pub fn run_engine_sharded(
    uncore: UncoreKind,
    bench: Benchmark,
    cores: usize,
    scheme: &Scheme,
    target: u64,
    seed: u64,
    shards: usize,
) -> SimReport {
    Simulation::new(bench)
        .uncore(uncore)
        .cores(cores)
        .scheme(scheme.clone())
        .engine(EngineKind::Threaded)
        .shards(shards)
        .commit_target(target)
        .seed(seed)
        .run()
        .unwrap_or_else(|e| {
            panic!("threaded run failed for {bench:?}/{uncore}/{cores} cores/{shards} shards: {e}")
        })
}

/// Runs one *speculative* configuration on the given engine with the
/// native host scheduler. The delta-checkpoint oracle (DESIGN §11)
/// drives this with the same configuration in both checkpoint modes and
/// compares fingerprints: on the deterministic sequential engine the
/// modes must be bit-identical, which proves delta capture/restore
/// reconstructs exactly the state a full clone would have.
///
/// # Panics
///
/// Panics if the engine reports an error.
pub fn run_speculative(
    bench: Benchmark,
    cores: usize,
    scheme: &Scheme,
    target: u64,
    seed: u64,
    engine: EngineKind,
    spec: SpeculationConfig,
) -> SimReport {
    Simulation::new(bench)
        .cores(cores)
        .scheme(scheme.clone())
        .engine(engine)
        .commit_target(target)
        .seed(seed)
        .speculation(spec)
        .run()
        .unwrap_or_else(|e| {
            panic!("{engine:?} speculative run failed for {bench:?}/{cores} cores: {e}")
        })
}

/// Runs one configuration through the durable-snapshot round trip: a
/// first run persists every committed checkpoint to a scratch directory,
/// then a second run resumes from the newest snapshot file — state having
/// crossed a process-independent byte format — and continues to `target`.
/// Returns the resumed run's report; under cycle-by-cycle the caller
/// compares its [`Fingerprint`] against an uninterrupted run, which
/// proves save/load restores every model bit-identically.
///
/// # Panics
///
/// Panics if either run fails, or if the first run persisted no
/// snapshot (the partial target must cover at least one checkpoint
/// interval).
pub fn run_resumed(
    bench: Benchmark,
    cores: usize,
    scheme: &Scheme,
    target: u64,
    seed: u64,
    engine: EngineKind,
    interval: u64,
) -> SimReport {
    run_resumed_on(
        UncoreKind::Bus,
        bench,
        cores,
        scheme,
        target,
        seed,
        engine,
        interval,
    )
}

/// [`run_resumed`] with an explicit uncore interconnect, so the durable
/// round trip also covers the directory banks' versioned byte format.
///
/// # Panics
///
/// Panics if either run fails, or if the first run persisted no
/// snapshot.
#[allow(clippy::too_many_arguments)]
pub fn run_resumed_on(
    uncore: UncoreKind,
    bench: Benchmark,
    cores: usize,
    scheme: &Scheme,
    target: u64,
    seed: u64,
    engine: EngineKind,
    interval: u64,
) -> SimReport {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SCRATCH: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "slacksim-conformance-{}-{}",
        std::process::id(),
        SCRATCH.fetch_add(1, Ordering::Relaxed)
    ));

    let spec = SpeculationConfig::checkpoint_only(interval);
    Simulation::new(bench)
        .uncore(uncore)
        .cores(cores)
        .scheme(scheme.clone())
        .engine(engine)
        .commit_target(target / 2)
        .seed(seed)
        .speculation(spec)
        .save_state(&dir)
        .run()
        .unwrap_or_else(|e| panic!("{engine:?} save-state run failed for {bench:?}: {e}"));

    let newest = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("read snapshot dir {}: {e}", dir.display()))
        .flatten()
        .filter(|e| e.file_name().to_string_lossy().starts_with("cp-"))
        .max_by_key(std::fs::DirEntry::file_name)
        .unwrap_or_else(|| panic!("no snapshot persisted in {}", dir.display()))
        .path();

    let resumed = Simulation::new(bench)
        .uncore(uncore)
        .cores(cores)
        .scheme(scheme.clone())
        .engine(engine)
        .commit_target(target)
        .seed(seed)
        .speculation(spec)
        .resume(&newest)
        .run()
        .unwrap_or_else(|e| panic!("{engine:?} resumed run failed for {bench:?}: {e}"));
    let _ = std::fs::remove_dir_all(&dir);
    resumed
}

/// Runs one case on the threaded engine under the virtual scheduler and
/// returns the report together with the schedule diagnostics.
///
/// # Panics
///
/// Panics if the engine reports an error.
pub fn run_virtual(case: &VirtCase) -> (SimReport, SchedDiag) {
    let sched = VirtualSched::with_shards(
        case.cores,
        case.shards,
        case.policy,
        case.sched_seed,
        case.mutation,
    );
    let report = Simulation::new(case.bench)
        .cores(case.cores)
        .scheme(case.scheme.clone())
        .engine(EngineKind::Threaded)
        .shards(case.shards)
        .commit_target(case.target)
        .seed(case.seed)
        .host_sched(SchedRef::new(Arc::clone(&sched) as Arc<_>))
        .run()
        .unwrap_or_else(|e| panic!("virtual run failed for `{case}`: {e}"));
    let diag = sched.diagnostics();
    (report, diag)
}

/// Parses a repro line and replays it.
///
/// # Errors
///
/// Returns the parse error for a malformed line.
pub fn run_repro(line: &str) -> Result<(SimReport, SchedDiag), String> {
    let case = crate::repro::parse_repro(line)?;
    Ok(run_virtual(&case))
}

/// Checks the metamorphic invariants every engine must uphold for every
/// scheme.
///
/// # Errors
///
/// Returns a description of the first violated invariant.
pub fn check_invariants(report: &SimReport, scheme: &Scheme) -> Result<(), String> {
    let per_core: u64 = report.core_total("committed");
    if per_core != report.committed {
        return Err(format!(
            "commit conservation: per-core sum {per_core} != aggregate {}",
            report.committed
        ));
    }
    let detected = report.kernel.get("violations_detected_total");
    let tallied = report.violations.total();
    if detected < tallied {
        return Err(format!(
            "obs consistency: kernel counter {detected} < tallied violations {tallied}"
        ));
    }
    if matches!(scheme, Scheme::CycleByCycle) && tallied != 0 {
        return Err(format!(
            "cycle-by-cycle must be violation-free, saw {tallied}"
        ));
    }
    Ok(())
}

/// Greedy failure minimizer: repeatedly tries smaller variants of `case`
/// and keeps any for which `fails` still returns `true`, until no
/// shrinking step applies. The predicate is the *failure* — shrinking
/// preserves it.
pub fn shrink<F: Fn(&VirtCase) -> bool>(case: VirtCase, fails: F) -> VirtCase {
    debug_assert!(fails(&case), "shrink needs a failing case to start from");
    let mut best = case;
    loop {
        let mut candidates: Vec<VirtCase> = Vec::new();
        if best.target > 500 {
            let mut c = best.clone();
            c.target = (best.target / 2).max(500);
            candidates.push(c);
        }
        if best.cores > 1 {
            let mut c = best.clone();
            c.cores = best.cores - 1;
            candidates.push(c);
            let mut c = best.clone();
            c.cores = 1;
            candidates.push(c);
        }
        if best.shards > 1 {
            // Failures that survive without the manager tree are far
            // easier to chase, so try collapsing to one shard first.
            let mut c = best.clone();
            c.shards = 1;
            candidates.push(c);
            let mut c = best.clone();
            c.shards = best.shards - 1;
            candidates.push(c);
        }
        if let Scheme::BoundedSlack { bound } = best.scheme {
            if bound > 1 {
                let mut c = best.clone();
                c.scheme = Scheme::BoundedSlack { bound: bound / 2 };
                candidates.push(c);
            }
        }
        if let crate::vsched::Mutation::DropUnpark { nth } = best.mutation {
            if nth > 0 {
                let mut c = best.clone();
                c.mutation = crate::vsched::Mutation::DropUnpark { nth: nth / 2 };
                candidates.push(c);
                let mut c = best.clone();
                c.mutation = crate::vsched::Mutation::DropUnpark { nth: nth - 1 };
                candidates.push(c);
            }
        }
        // First still-failing candidate wins this round; none → done.
        match candidates.into_iter().find(|c| *c != best && fails(c)) {
            Some(c) => best = c,
            None => return best,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vsched::{Mutation, SchedPolicy};

    fn case() -> VirtCase {
        VirtCase {
            policy: SchedPolicy::RandomWalk,
            sched_seed: 1,
            mutation: Mutation::DropUnpark { nth: 7 },
            bench: Benchmark::Fft,
            cores: 8,
            shards: 4,
            scheme: Scheme::BoundedSlack { bound: 16 },
            target: 8_000,
            seed: 1,
        }
    }

    #[test]
    fn shrink_reaches_minimal_case_when_everything_fails() {
        let shrunk = shrink(case(), |_| true);
        assert_eq!(shrunk.target, 500);
        assert_eq!(shrunk.cores, 1);
        assert_eq!(shrunk.shards, 1);
        assert_eq!(shrunk.scheme, Scheme::BoundedSlack { bound: 1 });
        assert_eq!(shrunk.mutation, Mutation::DropUnpark { nth: 0 });
    }

    #[test]
    fn shrink_keeps_shards_the_failure_needs() {
        let shrunk = shrink(case(), |c| c.shards >= 2);
        assert_eq!(shrunk.shards, 2);
    }

    #[test]
    fn shrink_respects_the_predicate() {
        // Failure requires >= 4 cores and target >= 4000.
        let shrunk = shrink(case(), |c| c.cores >= 4 && c.target >= 4_000);
        assert_eq!(shrunk.cores, 4);
        assert_eq!(shrunk.target, 4_000);
    }

    #[test]
    fn invariants_hold_for_a_sequential_run() {
        let scheme = Scheme::BoundedSlack { bound: 8 };
        let report = run_engine(
            Benchmark::Fft,
            2,
            &scheme,
            10_000,
            1,
            EngineKind::Sequential,
        );
        check_invariants(&report, &scheme).expect("invariants hold");
    }

    #[test]
    fn fingerprint_is_deterministic_for_the_sequential_engine() {
        let scheme = Scheme::CycleByCycle;
        let a = run_engine(Benchmark::Lu, 2, &scheme, 5_000, 3, EngineKind::Sequential);
        let b = run_engine(Benchmark::Lu, 2, &scheme, 5_000, 3, EngineKind::Sequential);
        assert_eq!(fingerprint(&a), fingerprint(&b));
    }
}
