//! The manager-side target model: snooping bus + shared L2 + cache status
//! map + synchronisation device, wired together as one
//! [`UncoreModel`].
//!
//! This is the simulation-manager role of SlackSim's architecture
//! (paper Figure 1): it consumes core requests from the global queue in
//! arrival order, arbitrates the bus, consults the cache map, sources data
//! (remote owner, L2, or memory), and delivers completion and snoop events
//! back into core InQs — detecting bus and map violations along the way.

use slacksim_core::checkpoint::Checkpointable;
use slacksim_core::engine::{ServiceSink, UncoreModel};
use slacksim_core::event::{CoreId, Timestamped};
use slacksim_core::persist::{ByteReader, ByteWriter, PersistError};
use slacksim_core::stats::Counters;
use slacksim_core::time::Cycle;
use slacksim_core::violation::{ViolationEvent, ViolationKind};

use crate::bus::{Bus, BusDelta};
use crate::config::{CmpConfig, UncoreKind};
use crate::directory::{Directory, DirectoryDelta};
use crate::event::MemEvent;
use crate::l2::{L2Delta, L2};
use crate::map::{CacheMap, CacheMapDelta};
use crate::mesi::BusOp;
use crate::sync::{SyncDevice, SyncDeviceDelta};

/// The shared portion of the target CMP.
///
/// # Examples
///
/// ```
/// use slacksim_cmp::config::CmpConfig;
/// use slacksim_cmp::uncore::CmpUncore;
///
/// let uncore = CmpUncore::new(&CmpConfig::paper());
/// ```
#[derive(Debug, Clone)]
pub struct CmpUncore {
    n_cores: usize,
    upgrade_latency: u64,
    cache_to_cache_latency: u64,
    snoop_latency: u64,
    dir_lookup_latency: u64,
    net_latency: u64,
    interconnect: Interconnect,
    l2: L2,
    sync: SyncDevice,
    c2c_transfers: u64,
    requests: u64,
    writebacks: u64,
    /// Tracking metadata: the component generations recorded by the last
    /// `capture_delta`, keyed by the composite generation token returned
    /// at that capture. Resolves the engine's single `since_gen` back to
    /// exact per-component baselines; an unknown token degrades to a
    /// conservative full capture/restore.
    cp_baseline: Option<(u64, UncoreGens)>,
}

/// The coherence interconnect: the paper's snooping bus (with the
/// manager's global status map) or the sharded directory.
#[derive(Debug, Clone)]
enum Interconnect {
    Bus { bus: Bus, map: CacheMap },
    Directory(Directory),
}

impl Interconnect {
    fn kind(&self) -> UncoreKind {
        match self {
            Interconnect::Bus { .. } => UncoreKind::Bus,
            Interconnect::Directory(_) => UncoreKind::Directory,
        }
    }
}

/// Per-component generation snapshot of the uncore (tracking metadata).
/// `ic`/`ic_aux` hold the interconnect's generations: bus and map for
/// the snooping kind, the directory's composite (and zero) otherwise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct UncoreGens {
    ic: u64,
    ic_aux: u64,
    l2: u64,
    sync: u64,
}

/// Incremental state carrier for the [`CmpUncore`]: component deltas plus
/// the uncore's own counters (carried unconditionally — they are three
/// words).
#[derive(Debug, Clone)]
pub struct CmpUncoreDelta {
    interconnect: InterconnectDelta,
    l2: L2Delta,
    sync: SyncDeviceDelta,
    c2c_transfers: u64,
    requests: u64,
    writebacks: u64,
}

/// Interconnect-shaped delta matching [`Interconnect`].
#[derive(Debug, Clone)]
enum InterconnectDelta {
    Bus { bus: BusDelta, map: CacheMapDelta },
    Directory(DirectoryDelta),
}

impl CmpUncoreDelta {
    /// Number of dirty L2 sets carried.
    pub fn l2_dirty_sets(&self) -> usize {
        self.l2.dirty_sets()
    }

    /// Number of dirty coherence lines carried (status-map lines on the
    /// bus path, directory-entry lines summed across banks otherwise).
    pub fn map_dirty_lines(&self) -> usize {
        match &self.interconnect {
            InterconnectDelta::Bus { map, .. } => map.dirty_lines(),
            InterconnectDelta::Directory(d) => d.dirty_lines(),
        }
    }

    /// Whether interconnect-global state is carried (the bus calendars,
    /// or at least one dirty directory bank).
    pub fn bus_dirty(&self) -> bool {
        match &self.interconnect {
            InterconnectDelta::Bus { bus, .. } => bus.is_dirty(),
            InterconnectDelta::Directory(d) => d.dirty_banks() > 0,
        }
    }

    /// Number of directory banks carried (0 on the bus path).
    pub fn dirty_banks(&self) -> usize {
        match &self.interconnect {
            InterconnectDelta::Bus { .. } => 0,
            InterconnectDelta::Directory(d) => d.dirty_banks(),
        }
    }
}

impl CmpUncore {
    /// Builds the uncore for the given target configuration.
    pub fn new(cfg: &CmpConfig) -> Self {
        let u = &cfg.uncore;
        let interconnect = match cfg.uncore_kind {
            UncoreKind::Bus => Interconnect::Bus {
                bus: Bus::new(u.req_bus_cycles, u.resp_bus_cycles),
                map: CacheMap::new(cfg.cores),
            },
            UncoreKind::Directory => {
                Interconnect::Directory(Directory::new(cfg.cores, u.dir_lookup_latency))
            }
        };
        CmpUncore {
            n_cores: cfg.cores,
            upgrade_latency: u.upgrade_latency,
            cache_to_cache_latency: u.cache_to_cache_latency,
            snoop_latency: u.snoop_latency,
            dir_lookup_latency: u.dir_lookup_latency,
            net_latency: u.net_latency,
            interconnect,
            l2: L2::new(u.l2, u.l2_hit_latency, u.l2_miss_latency),
            sync: SyncDevice::new(cfg.cores, u.barrier_latency, u.lock_latency),
            c2c_transfers: 0,
            requests: 0,
            writebacks: 0,
            cp_baseline: None,
        }
    }

    fn ic_gens(&self) -> (u64, u64) {
        match &self.interconnect {
            Interconnect::Bus { bus, map } => (bus.generation(), map.generation()),
            Interconnect::Directory(dir) => (dir.generation(), 0),
        }
    }

    fn component_gens(&self) -> UncoreGens {
        let (ic, ic_aux) = self.ic_gens();
        UncoreGens {
            ic,
            ic_aux,
            l2: self.l2.generation(),
            sync: self.sync.generation(),
        }
    }

    /// Resolves the engine's opaque `since_gen` token back to exact
    /// per-component baselines. Three cases: the token matches the last
    /// recorded capture (exact baselines); the token equals the *current*
    /// composite generation (nothing mutated — current gens are exact);
    /// anything else is unknown and degrades to since-0, which captures
    /// or restores everything (conservative but correct).
    fn resolve_baseline(&self, since_gen: u64) -> UncoreGens {
        match self.cp_baseline {
            Some((g, gens)) if g == since_gen => gens,
            _ if since_gen == self.generation() => self.component_gens(),
            _ => UncoreGens::default(),
        }
    }

    /// Which interconnect this uncore instantiates.
    pub fn uncore_kind(&self) -> UncoreKind {
        self.interconnect.kind()
    }

    /// The bus model (read access for assertions and reports).
    ///
    /// # Panics
    ///
    /// Panics when the uncore is configured with the directory
    /// interconnect.
    pub fn bus(&self) -> &Bus {
        match &self.interconnect {
            Interconnect::Bus { bus, .. } => bus,
            Interconnect::Directory(_) => panic!("directory uncore has no bus"),
        }
    }

    /// The cache status map (read access for assertions and reports).
    ///
    /// # Panics
    ///
    /// Panics when the uncore is configured with the directory
    /// interconnect.
    pub fn map(&self) -> &CacheMap {
        match &self.interconnect {
            Interconnect::Bus { map, .. } => map,
            Interconnect::Directory(_) => panic!("directory uncore has no status map"),
        }
    }

    /// The directory model (read access for assertions and reports).
    ///
    /// # Panics
    ///
    /// Panics when the uncore is configured with the snooping bus.
    pub fn directory(&self) -> &Directory {
        match &self.interconnect {
            Interconnect::Bus { .. } => panic!("bus uncore has no directory"),
            Interconnect::Directory(dir) => dir,
        }
    }

    /// Serializes the full uncore state for the on-disk snapshot format.
    /// The stream leads with an interconnect-kind tag so a snapshot can
    /// never be restored into an uncore of the other kind.
    pub fn save_state(&self, w: &mut ByteWriter) {
        match &self.interconnect {
            Interconnect::Bus { bus, map } => {
                w.u32(0);
                bus.save_state(w);
                map.save_state(w);
            }
            Interconnect::Directory(dir) => {
                w.u32(1);
                dir.save_state(w);
            }
        }
        self.l2.save_state(w);
        self.sync.save_state(w);
        w.u64(self.c2c_transfers);
        w.u64(self.requests);
        w.u64(self.writebacks);
    }

    /// Restores state written by [`CmpUncore::save_state`] into a freshly
    /// constructed uncore of the same configuration.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError`] for malformed bytes or state inconsistent
    /// with this uncore's configuration (including a snapshot taken under
    /// the other interconnect kind).
    pub fn load_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), PersistError> {
        let tag = r.u32()?;
        match &mut self.interconnect {
            Interconnect::Bus { bus, map } => {
                if tag != 0 {
                    return Err(PersistError::Corrupt(
                        "snapshot interconnect kind does not match configuration",
                    ));
                }
                bus.load_state(r)?;
                map.load_state(r)?;
            }
            Interconnect::Directory(dir) => {
                if tag != 1 {
                    return Err(PersistError::Corrupt(
                        "snapshot interconnect kind does not match configuration",
                    ));
                }
                dir.load_state(r)?;
            }
        }
        self.l2.load_state(r)?;
        self.sync.load_state(r)?;
        self.c2c_transfers = r.u64()?;
        self.requests = r.u64()?;
        self.writebacks = r.u64()?;
        self.cp_baseline = None;
        Ok(())
    }
}

impl Checkpointable for CmpUncore {
    type Delta = CmpUncoreDelta;

    /// The composite generation is the sum of the component generations:
    /// monotone (every tracked mutation bumps exactly one component) and
    /// opaque to engines, which only ever feed it back to
    /// [`capture_delta`](Checkpointable::capture_delta) /
    /// [`restore_from`](Checkpointable::restore_from) where
    /// `resolve_baseline` maps it to exact per-component baselines.
    fn generation(&self) -> u64 {
        let (ic, ic_aux) = self.ic_gens();
        ic + ic_aux + self.l2.generation() + self.sync.generation()
    }

    fn capture_delta(&mut self, since_gen: u64) -> CmpUncoreDelta {
        let baseline = self.resolve_baseline(since_gen);
        let interconnect = match &mut self.interconnect {
            Interconnect::Bus { bus, map } => InterconnectDelta::Bus {
                bus: bus.capture_delta(baseline.ic),
                map: map.capture_delta(baseline.ic_aux),
            },
            Interconnect::Directory(dir) => {
                InterconnectDelta::Directory(dir.capture_delta(baseline.ic))
            }
        };
        let delta = CmpUncoreDelta {
            interconnect,
            l2: self.l2.capture_delta(baseline.l2),
            sync: self.sync.capture_delta(baseline.sync),
            c2c_transfers: self.c2c_transfers,
            requests: self.requests,
            writebacks: self.writebacks,
        };
        self.cp_baseline = Some((self.generation(), self.component_gens()));
        delta
    }

    fn apply_delta(&mut self, delta: CmpUncoreDelta) {
        match (&mut self.interconnect, delta.interconnect) {
            (Interconnect::Bus { bus, map }, InterconnectDelta::Bus { bus: bd, map: md }) => {
                bus.apply_delta(bd);
                map.apply_delta(md);
            }
            (Interconnect::Directory(dir), InterconnectDelta::Directory(dd)) => {
                dir.apply_delta(dd);
            }
            _ => unreachable!("delta interconnect kind matches the uncore that captured it"),
        }
        self.l2.apply_delta(delta.l2);
        self.sync.apply_delta(delta.sync);
        self.c2c_transfers = delta.c2c_transfers;
        self.requests = delta.requests;
        self.writebacks = delta.writebacks;
    }

    fn restore_from(&mut self, base: &Self, since_gen: u64) {
        let baseline = self.resolve_baseline(since_gen);
        match (&mut self.interconnect, &base.interconnect) {
            (
                Interconnect::Bus { bus, map },
                Interconnect::Bus {
                    bus: base_bus,
                    map: base_map,
                },
            ) => {
                bus.restore_from(base_bus, baseline.ic);
                map.restore_from(base_map, baseline.ic_aux);
            }
            (Interconnect::Directory(dir), Interconnect::Directory(base_dir)) => {
                dir.restore_from(base_dir, baseline.ic);
            }
            _ => unreachable!("checkpoint interconnect kind matches the live uncore"),
        }
        self.l2.restore_from(&base.l2, baseline.l2);
        self.sync.restore_from(&base.sync, baseline.sync);
        self.c2c_transfers = base.c2c_transfers;
        self.requests = base.requests;
        self.writebacks = base.writebacks;
        // cp_baseline is deliberately kept: the checkpoint it describes is
        // still the live baseline for the next capture, and component
        // generations are never rewound.
    }
}

impl UncoreModel<MemEvent> for CmpUncore {
    fn service(
        &mut self,
        from: CoreId,
        ev: Timestamped<MemEvent>,
        sink: &mut ServiceSink<MemEvent>,
    ) {
        let ts = ev.ts;
        match ev.payload {
            MemEvent::Request {
                op,
                line,
                req,
                ifetch: _,
            } => {
                self.requests += 1;
                match &mut self.interconnect {
                    Interconnect::Bus { bus, map } => {
                        let grant = bus.arbitrate(ts);
                        if grant.violation {
                            sink.report_violation(ViolationEvent {
                                kind: ViolationKind::Bus,
                                ts,
                                high_water: grant.high_water,
                            });
                        }
                        let outcome = map.transition(op, line, from, ts);
                        if outcome.violation {
                            sink.report_violation(ViolationEvent {
                                kind: ViolationKind::Map,
                                ts,
                                high_water: outcome.high_water,
                            });
                        }
                        // Snoop deliveries ride right behind the request
                        // broadcast.
                        let snoop_ts = grant.grant + self.snoop_latency;
                        for c in outcome.invalidate {
                            sink.deliver(
                                c,
                                Timestamped::new(snoop_ts, MemEvent::Invalidate { line }),
                            );
                        }
                        for c in outcome.downgrade {
                            sink.deliver(
                                c,
                                Timestamped::new(snoop_ts, MemEvent::Downgrade { line }),
                            );
                        }
                        // Source the data.
                        let data_ready = if let Some(_owner) = outcome.data_from_owner {
                            self.c2c_transfers += 1;
                            grant.grant + self.cache_to_cache_latency
                        } else if op == BusOp::Upgr {
                            grant.grant + self.upgrade_latency
                        } else {
                            self.l2.access(line, grant.grant).data_ready
                        };
                        let done = bus.respond(data_ready);
                        sink.deliver(
                            from,
                            Timestamped::new(
                                done,
                                MemEvent::Reply {
                                    req,
                                    line,
                                    grant: outcome.grant,
                                },
                            ),
                        );
                    }
                    Interconnect::Directory(dir) => {
                        let access = dir.access(op, line, from, ts);
                        if access.order_violation {
                            sink.report_violation(ViolationEvent {
                                kind: ViolationKind::Directory,
                                ts,
                                high_water: access.order_high_water,
                            });
                        }
                        if access.line_violation {
                            sink.report_violation(ViolationEvent {
                                kind: ViolationKind::Map,
                                ts,
                                high_water: access.line_high_water,
                            });
                        }
                        // The bank finishes its lookup one port occupancy
                        // after the grant; snoops and data are then
                        // point-to-point messages — there is no broadcast
                        // bus or shared response resource to arbitrate.
                        let lookup_done = access.grant + self.dir_lookup_latency;
                        let snoop_ts = lookup_done + self.net_latency;
                        for c in access.invalidate {
                            sink.deliver(
                                c,
                                Timestamped::new(snoop_ts, MemEvent::Invalidate { line }),
                            );
                        }
                        for c in access.downgrade {
                            sink.deliver(
                                c,
                                Timestamped::new(snoop_ts, MemEvent::Downgrade { line }),
                            );
                        }
                        let data_ready = if access.data_from_owner.is_some() {
                            self.c2c_transfers += 1;
                            lookup_done + self.cache_to_cache_latency
                        } else if op == BusOp::Upgr {
                            lookup_done + self.upgrade_latency
                        } else {
                            self.l2.access(line, lookup_done).data_ready
                        };
                        let done = data_ready + self.net_latency;
                        sink.deliver(
                            from,
                            Timestamped::new(
                                done,
                                MemEvent::Reply {
                                    req,
                                    line,
                                    grant: access.grant_state,
                                },
                            ),
                        );
                    }
                }
            }
            MemEvent::Writeback { line } => {
                self.writebacks += 1;
                match &mut self.interconnect {
                    Interconnect::Bus { bus, map } => {
                        let grant = bus.arbitrate(ts);
                        if grant.violation {
                            sink.report_violation(ViolationEvent {
                                kind: ViolationKind::Bus,
                                ts,
                                high_water: grant.high_water,
                            });
                        }
                        let outcome = map.transition(BusOp::Wb, line, from, ts);
                        if outcome.violation {
                            sink.report_violation(ViolationEvent {
                                kind: ViolationKind::Map,
                                ts,
                                high_water: outcome.high_water,
                            });
                        }
                    }
                    Interconnect::Directory(dir) => {
                        let access = dir.access(BusOp::Wb, line, from, ts);
                        if access.order_violation {
                            sink.report_violation(ViolationEvent {
                                kind: ViolationKind::Directory,
                                ts,
                                high_water: access.order_high_water,
                            });
                        }
                        if access.line_violation {
                            sink.report_violation(ViolationEvent {
                                kind: ViolationKind::Map,
                                ts,
                                high_water: access.line_high_water,
                            });
                        }
                    }
                }
                self.l2.write_back(line);
            }
            MemEvent::BarrierArrive { id } => {
                if let Some((release, cores)) = self.sync.barrier_arrive(from, id, ts) {
                    for c in cores {
                        sink.deliver(
                            c,
                            Timestamped::new(release, MemEvent::BarrierRelease { id }),
                        );
                    }
                }
            }
            MemEvent::LockAcquire { id } => {
                if let Some(grant) = self.sync.lock_acquire(from, id, ts) {
                    sink.deliver(from, Timestamped::new(grant, MemEvent::LockGranted { id }));
                }
            }
            MemEvent::LockRelease { id } => {
                if let Some((next, grant)) = self.sync.lock_release(from, id, ts) {
                    sink.deliver(next, Timestamped::new(grant, MemEvent::LockGranted { id }));
                }
            }
            reply @ (MemEvent::Reply { .. }
            | MemEvent::Invalidate { .. }
            | MemEvent::Downgrade { .. }
            | MemEvent::BarrierRelease { .. }
            | MemEvent::LockGranted { .. }) => {
                debug_assert!(false, "core sent a manager-direction event: {reply:?}");
            }
        }
    }

    /// Drops per-line order monitors whose high-water mark is at or below
    /// the committed checkpoint horizon: every event up to the horizon has
    /// been serviced, and future events carry later timestamps, so those
    /// monitors can never flag again. Keeps long runs' monitor footprint
    /// flat instead of growing with the touched-line count.
    fn compact_monitors(&mut self, horizon: Cycle) {
        match &mut self.interconnect {
            Interconnect::Bus { map, .. } => {
                map.compact_monitor(horizon);
            }
            Interconnect::Directory(dir) => {
                dir.compact_monitors(horizon);
            }
        }
    }

    fn counters(&self) -> Counters {
        let mut c = Counters::new();
        match &self.interconnect {
            Interconnect::Bus { bus, map } => {
                c.set("bus_transactions", bus.transactions());
                c.set("bus_conflicts", bus.conflicts());
                c.set("bus_busy_cycles", bus.busy_cycles());
                c.set("bus_violations", bus.violations());
                c.set("map_transitions", map.transitions());
                c.set("map_violations", map.violations());
                c.set("map_tracked_lines", map.tracked_lines() as u64);
                c.set("map_monitor_entries", map.monitor_entries() as u64);
            }
            Interconnect::Directory(dir) => {
                c.set("dir_banks", dir.banks() as u64);
                c.set("dir_transactions", dir.transitions());
                c.set("dir_conflicts", dir.conflicts());
                c.set("dir_busy_cycles", dir.busy_cycles());
                c.set("dir_violations", dir.order_violations());
                c.set("map_transitions", dir.transitions());
                c.set("map_violations", dir.line_violations());
                c.set("map_tracked_lines", dir.tracked_lines() as u64);
                c.set("map_monitor_entries", dir.monitor_entries() as u64);
            }
        }
        c.set("l2_hits", self.l2.hits());
        c.set("l2_misses", self.l2.misses());
        c.set("l2_writebacks_in", self.l2.writebacks_in());
        c.set("l2_memory_writes", self.l2.memory_writes());
        c.set("coherence_requests", self.requests);
        c.set("writebacks", self.writebacks);
        c.set("cache_to_cache_transfers", self.c2c_transfers);
        c.set("barriers_completed", self.sync.barriers_completed());
        c.set("lock_grants", self.sync.lock_grants());
        c.set("lock_contended", self.sync.lock_contended());
        c.set("cores", self.n_cores as u64);
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::LineAddr;
    use slacksim_core::time::Cycle;

    fn uncore() -> CmpUncore {
        CmpUncore::new(&CmpConfig::paper())
    }

    fn request(op: BusOp, line: u64, req: u32) -> MemEvent {
        MemEvent::Request {
            op,
            line: LineAddr::new(line),
            req,
            ifetch: false,
        }
    }

    fn service(
        u: &mut CmpUncore,
        from: u16,
        ts: u64,
        ev: MemEvent,
    ) -> (Vec<(CoreId, Timestamped<MemEvent>)>, Vec<ViolationEvent>) {
        let mut sink = ServiceSink::new();
        u.service(
            CoreId::new(from),
            Timestamped::new(Cycle::new(ts), ev),
            &mut sink,
        );
        (
            sink.take_deliveries().collect(),
            sink.take_violations().collect(),
        )
    }

    #[test]
    fn cold_read_misses_to_memory() {
        let mut u = uncore();
        let (deliveries, violations) = service(&mut u, 0, 10, request(BusOp::Rd, 7, 1));
        assert!(violations.is_empty());
        assert_eq!(deliveries.len(), 1);
        let (to, ev) = &deliveries[0];
        assert_eq!(*to, CoreId::new(0));
        // grant(10) + miss(100) + response bus(1).
        assert_eq!(ev.ts, Cycle::new(111));
        match &ev.payload {
            MemEvent::Reply { grant, .. } => {
                assert_eq!(*grant, crate::mesi::MesiState::Exclusive)
            }
            other => panic!("unexpected delivery {other:?}"),
        }
    }

    #[test]
    fn second_reader_gets_shared_and_owner_downgrade() {
        let mut u = uncore();
        service(&mut u, 0, 10, request(BusOp::Rd, 7, 1));
        let (deliveries, _) = service(&mut u, 1, 20, request(BusOp::Rd, 7, 2));
        // Downgrade to core 0 plus reply to core 1.
        assert_eq!(deliveries.len(), 2);
        assert!(matches!(
            deliveries[0].1.payload,
            MemEvent::Downgrade { .. }
        ));
        assert_eq!(deliveries[0].0, CoreId::new(0));
        match &deliveries[1].1.payload {
            MemEvent::Reply { grant, .. } => {
                assert_eq!(*grant, crate::mesi::MesiState::Shared)
            }
            other => panic!("unexpected {other:?}"),
        }
        // Cache-to-cache is faster than memory.
        assert!(deliveries[1].1.ts < Cycle::new(20 + 100));
    }

    #[test]
    fn rdx_invalidates_sharers() {
        let mut u = uncore();
        service(&mut u, 0, 10, request(BusOp::Rd, 7, 1));
        service(&mut u, 1, 20, request(BusOp::Rd, 7, 2));
        let (deliveries, _) = service(&mut u, 2, 30, request(BusOp::RdX, 7, 3));
        let invals: Vec<CoreId> = deliveries
            .iter()
            .filter(|(_, e)| matches!(e.payload, MemEvent::Invalidate { .. }))
            .map(|(c, _)| *c)
            .collect();
        assert_eq!(invals, vec![CoreId::new(0), CoreId::new(1)]);
    }

    #[test]
    fn upgrade_is_fast_and_dataless() {
        let mut u = uncore();
        service(&mut u, 0, 10, request(BusOp::Rd, 7, 1));
        service(&mut u, 1, 20, request(BusOp::Rd, 7, 2));
        let (deliveries, _) = service(&mut u, 0, 30, request(BusOp::Upgr, 7, 3));
        let reply = deliveries
            .iter()
            .find(|(_, e)| matches!(e.payload, MemEvent::Reply { .. }))
            .expect("reply");
        // grant(30) + upgrade(3) + resp bus(1).
        assert_eq!(reply.1.ts, Cycle::new(34));
    }

    #[test]
    fn out_of_order_requests_yield_bus_and_map_violations() {
        let mut u = uncore();
        service(&mut u, 0, 100, request(BusOp::Rd, 7, 1));
        let (_, violations) = service(&mut u, 1, 50, request(BusOp::Rd, 7, 2));
        let kinds: Vec<ViolationKind> = violations.iter().map(|v| v.kind).collect();
        assert!(kinds.contains(&ViolationKind::Bus));
        assert!(kinds.contains(&ViolationKind::Map));
    }

    #[test]
    fn different_lines_only_violate_the_bus() {
        let mut u = uncore();
        service(&mut u, 0, 100, request(BusOp::Rd, 7, 1));
        let (_, violations) = service(&mut u, 1, 50, request(BusOp::Rd, 999, 2));
        let kinds: Vec<ViolationKind> = violations.iter().map(|v| v.kind).collect();
        assert_eq!(kinds, vec![ViolationKind::Bus]);
    }

    #[test]
    fn writeback_has_no_reply() {
        let mut u = uncore();
        service(&mut u, 0, 10, request(BusOp::RdX, 7, 1));
        let (deliveries, _) = service(
            &mut u,
            0,
            50,
            MemEvent::Writeback {
                line: LineAddr::new(7),
            },
        );
        assert!(deliveries.is_empty());
        assert_eq!(u.counters().get("l2_writebacks_in"), 1);
    }

    #[test]
    fn sync_traffic_bypasses_the_bus() {
        let mut u = uncore();
        let before = u.bus().transactions();
        service(&mut u, 0, 10, MemEvent::LockAcquire { id: 1 });
        service(&mut u, 0, 20, MemEvent::LockRelease { id: 1 });
        for i in 0..8u16 {
            service(&mut u, i, 30, MemEvent::BarrierArrive { id: 0 });
        }
        assert_eq!(u.bus().transactions(), before);
        assert_eq!(u.counters().get("barriers_completed"), 1);
    }

    #[test]
    fn barrier_release_reaches_all_cores() {
        let mut u = uncore();
        let mut released = Vec::new();
        for i in 0..8u16 {
            let (d, _) = service(&mut u, i, 10 + i as u64, MemEvent::BarrierArrive { id: 3 });
            released = d;
        }
        assert_eq!(released.len(), 8);
        assert!(released
            .iter()
            .all(|(_, e)| matches!(e.payload, MemEvent::BarrierRelease { id: 3 })));
    }

    #[test]
    fn delta_roundtrip_matches_full_clone() {
        let mut live = uncore();
        service(&mut live, 0, 10, request(BusOp::Rd, 7, 1));
        let mut base = live.clone();
        let g0 = live.generation();
        // Seed the baseline at the checkpoint; nothing is dirty yet.
        let seed = live.capture_delta(g0);
        assert!(!seed.bus_dirty());
        assert_eq!(seed.map_dirty_lines(), 0);
        assert_eq!(seed.l2_dirty_sets(), 0);
        service(&mut live, 1, 20, request(BusOp::RdX, 7, 2));
        service(&mut live, 0, 30, MemEvent::LockAcquire { id: 1 });
        let delta = live.capture_delta(g0);
        assert!(delta.bus_dirty());
        assert!(delta.map_dirty_lines() >= 1);
        base.apply_delta(delta);
        assert_eq!(base.counters(), live.counters());
        assert_eq!(base.bus(), live.bus());
        assert_eq!(base.map(), live.map());
    }

    #[test]
    fn restore_rewinds_to_the_checkpoint_base() {
        let mut live = uncore();
        service(&mut live, 0, 10, request(BusOp::Rd, 7, 1));
        let base = live.clone();
        let g0 = live.generation();
        let _ = live.capture_delta(g0);
        service(&mut live, 1, 20, request(BusOp::RdX, 9, 2));
        service(&mut live, 2, 25, MemEvent::BarrierArrive { id: 0 });
        live.restore_from(&base, g0);
        assert_eq!(live.counters(), base.counters());
        assert_eq!(live.bus(), base.bus());
        assert_eq!(live.map(), base.map());
    }

    #[test]
    fn unknown_baseline_token_degrades_to_full_restore() {
        let mut live = uncore();
        service(&mut live, 0, 10, request(BusOp::Rd, 7, 1));
        let base = live.clone();
        // No capture was ever taken: the token is unknown, so restore must
        // conservatively rewind everything.
        service(&mut live, 1, 20, request(BusOp::RdX, 9, 2));
        live.restore_from(&base, 12345);
        assert_eq!(live.counters(), base.counters());
        assert_eq!(live.map(), base.map());
    }

    #[test]
    fn save_load_round_trip_is_bit_identical() {
        let mut live = uncore();
        service(&mut live, 0, 10, request(BusOp::Rd, 7, 1));
        service(&mut live, 1, 20, request(BusOp::RdX, 7, 2));
        service(&mut live, 0, 30, MemEvent::LockAcquire { id: 1 });
        service(&mut live, 1, 31, MemEvent::LockAcquire { id: 1 });
        service(&mut live, 2, 40, MemEvent::BarrierArrive { id: 0 });
        let mut w = ByteWriter::new();
        live.save_state(&mut w);
        let bytes = w.into_bytes();

        let mut restored = uncore();
        let mut r = ByteReader::new(&bytes);
        restored.load_state(&mut r).unwrap();
        r.finish().unwrap();

        assert_eq!(restored.counters(), live.counters());
        assert_eq!(restored.bus(), live.bus());
        assert_eq!(restored.map(), live.map());
        // Identical forward behaviour, including the in-flight lock FIFO
        // and the open barrier episode.
        let (da, va) = service(&mut live, 0, 50, MemEvent::LockRelease { id: 1 });
        let (db, vb) = service(&mut restored, 0, 50, MemEvent::LockRelease { id: 1 });
        assert_eq!(da, db);
        assert_eq!(va.len(), vb.len());
        let (da, _) = service(&mut live, 2, 60, request(BusOp::Rd, 99, 3));
        let (db, _) = service(&mut restored, 2, 60, request(BusOp::Rd, 99, 3));
        assert_eq!(da, db);

        let mut truncated = uncore();
        let mut r = ByteReader::new(&bytes[..bytes.len() - 4]);
        assert!(truncated.load_state(&mut r).is_err());
    }

    #[test]
    fn monitor_compaction_flattens_long_runs() {
        let mut u = uncore();
        let mut peak = 0usize;
        for i in 0..400u64 {
            // Touch a fresh line each round so an uncompacted monitor map
            // would grow without bound.
            service(&mut u, 0, 10 * i, request(BusOp::Rd, 1000 + i, i as u32));
            if i % 50 == 49 {
                // The engine compacts at each committed checkpoint: every
                // event at or below the horizon has been serviced.
                u.compact_monitors(Cycle::new(10 * i));
            }
            peak = peak.max(u.counters().get("map_monitor_entries") as usize);
        }
        assert!(
            peak <= 60,
            "monitor map must stay flat under compaction, peaked at {peak}"
        );
        // Lines remain tracked for coherence even after their monitors go.
        assert!(u.counters().get("map_tracked_lines") >= 400);
    }

    #[test]
    fn counters_are_populated() {
        let mut u = uncore();
        service(&mut u, 0, 10, request(BusOp::Rd, 7, 1));
        let c = u.counters();
        assert_eq!(c.get("bus_transactions"), 1);
        assert_eq!(c.get("coherence_requests"), 1);
        assert_eq!(c.get("l2_misses"), 1);
        assert_eq!(c.get("cores"), 8);
    }

    fn dir_uncore(cores: usize) -> CmpUncore {
        CmpUncore::new(&CmpConfig::with_uncore(
            crate::config::UncoreKind::Directory,
            cores,
        ))
    }

    #[test]
    fn directory_cold_read_misses_to_memory() {
        let mut u = dir_uncore(64);
        let (deliveries, violations) = service(&mut u, 0, 10, request(BusOp::Rd, 7, 1));
        assert!(violations.is_empty());
        assert_eq!(deliveries.len(), 1);
        // grant(10) + lookup(4) + miss(100) + net hop(3).
        assert_eq!(deliveries[0].1.ts, Cycle::new(117));
        assert!(matches!(
            deliveries[0].1.payload,
            MemEvent::Reply {
                grant: crate::mesi::MesiState::Exclusive,
                ..
            }
        ));
    }

    #[test]
    fn directory_violations_are_per_bank() {
        let mut u = dir_uncore(64); // 16 banks
        service(&mut u, 0, 100, request(BusOp::Rd, 16, 1)); // bank 0
                                                            // Earlier timestamp at a different bank: no violation at all.
        let (_, violations) = service(&mut u, 1, 50, request(BusOp::Rd, 17, 2));
        assert!(violations.is_empty(), "different bank, no shared monitor");
        // Earlier timestamp at the same bank, different line: directory
        // violation only.
        let (_, violations) = service(&mut u, 2, 60, request(BusOp::Rd, 32, 3));
        let kinds: Vec<ViolationKind> = violations.iter().map(|v| v.kind).collect();
        assert_eq!(kinds, vec![ViolationKind::Directory]);
        // Earlier timestamp on the same line: directory and map classes.
        let (_, violations) = service(&mut u, 3, 70, request(BusOp::Rd, 16, 4));
        let kinds: Vec<ViolationKind> = violations.iter().map(|v| v.kind).collect();
        assert!(kinds.contains(&ViolationKind::Directory));
        assert!(kinds.contains(&ViolationKind::Map));
    }

    #[test]
    fn directory_invalidates_many_sharers_in_core_order() {
        let mut u = dir_uncore(64);
        for i in 0..64u16 {
            service(&mut u, i, 10 + u64::from(i), request(BusOp::Rd, 7, 1));
        }
        let (deliveries, _) = service(&mut u, 5, 1000, request(BusOp::Upgr, 7, 2));
        let invals: Vec<CoreId> = deliveries
            .iter()
            .filter(|(_, e)| matches!(e.payload, MemEvent::Invalidate { .. }))
            .map(|(c, _)| *c)
            .collect();
        assert_eq!(invals.len(), 63, "all sharers but the upgrader");
        assert!(invals.windows(2).all(|p| p[0] < p[1]));
    }

    #[test]
    fn directory_counters_are_populated() {
        let mut u = dir_uncore(64);
        service(&mut u, 0, 10, request(BusOp::Rd, 7, 1));
        let c = u.counters();
        assert_eq!(c.get("dir_banks"), 16);
        assert_eq!(c.get("dir_transactions"), 1);
        assert_eq!(c.get("map_transitions"), 1);
        assert_eq!(c.get("cores"), 64);
        assert_eq!(c.get("bus_transactions"), 0, "no bus on this path");
    }

    #[test]
    fn directory_delta_roundtrip_matches_full_clone() {
        let mut live = dir_uncore(64);
        service(&mut live, 0, 10, request(BusOp::Rd, 7, 1));
        let mut base = live.clone();
        let g0 = live.generation();
        let seed = live.capture_delta(g0);
        assert_eq!(seed.dirty_banks(), 0, "clean since capture");
        service(&mut live, 1, 20, request(BusOp::RdX, 7, 2));
        service(&mut live, 2, 30, request(BusOp::Rd, 9, 3));
        let delta = live.capture_delta(g0);
        assert!(delta.dirty_banks() >= 1);
        assert!(delta.map_dirty_lines() >= 2);
        base.apply_delta(delta);
        assert_eq!(base.counters(), live.counters());
        assert_eq!(base.directory(), live.directory());
    }

    #[test]
    fn directory_restore_rewinds_to_the_checkpoint() {
        let mut live = dir_uncore(64);
        service(&mut live, 0, 10, request(BusOp::Rd, 7, 1));
        let base = live.clone();
        let g0 = live.generation();
        let _ = live.capture_delta(g0);
        service(&mut live, 1, 20, request(BusOp::RdX, 9, 2));
        service(&mut live, 2, 25, MemEvent::BarrierArrive { id: 0 });
        live.restore_from(&base, g0);
        assert_eq!(live.counters(), base.counters());
        assert_eq!(live.directory(), base.directory());
    }

    #[test]
    fn directory_save_load_round_trip_is_bit_identical() {
        let mut live = dir_uncore(64);
        for i in 0..40u16 {
            service(&mut live, i, 10 + u64::from(i), request(BusOp::Rd, 7, 1));
        }
        service(&mut live, 0, 100, MemEvent::LockAcquire { id: 1 });
        service(&mut live, 33, 101, MemEvent::LockAcquire { id: 1 });
        service(&mut live, 63, 110, MemEvent::BarrierArrive { id: 0 });
        let mut w = ByteWriter::new();
        live.save_state(&mut w);
        let bytes = w.into_bytes();

        let mut restored = dir_uncore(64);
        let mut r = ByteReader::new(&bytes);
        restored.load_state(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(restored.counters(), live.counters());
        assert_eq!(restored.directory(), live.directory());
        let (da, _) = service(&mut live, 50, 200, request(BusOp::RdX, 7, 9));
        let (db, _) = service(&mut restored, 50, 200, request(BusOp::RdX, 7, 9));
        assert_eq!(da, db, "identical forward behaviour after resume");

        // A bus-kind uncore refuses a directory snapshot outright.
        let mut wrong = uncore();
        assert!(wrong.load_state(&mut ByteReader::new(&bytes)).is_err());
    }
}
