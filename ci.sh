#!/usr/bin/env bash
# Offline CI gate: build, test, lint, format. No network access required.
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

echo "==> cargo build --release"
cargo build --workspace --release --offline

echo "==> cargo test -q"
cargo test --workspace -q --offline

echo "==> cargo test -q --release"
cargo test --workspace -q --release --offline

echo "==> conformance smoke (adversarial schedules, bounded seeds)"
# Bounded-time schedule-fuzzing pass: the virtual-scheduler matrix from
# crates/conformance runs in release with a pinned seed count per
# adversarial schedule so wall time stays inside the CI budget. Raise
# SLACKSIM_CONFORMANCE_SEEDS locally for a deeper exploration.
SLACKSIM_CONFORMANCE_SEEDS=4 \
    cargo test -p slacksim-conformance -q --release --offline

echo "==> delta-checkpoint smoke (bounded slack, full-vs-delta oracle + CLI)"
# The delta-vs-full state-equality oracle (DESIGN §11-§12) on the
# deterministic engine — delta-restored state must be bit-identical to a
# full-clone restore across the speculation matrix — plus one end-to-end
# threaded delta-mode run through the release binary under a greedy
# (bounded) scheme.
cargo test -p slacksim-conformance -q --release --offline \
    --test conformance delta_checkpoints_match_full_clones_exactly
./target/release/slacksim --scheme bounded --bound 16 --engine threaded \
    --commit 20000 --checkpoint 2000 --checkpoint-mode delta --rollback all \
    > /dev/null

echo "==> kill-and-resume smoke (durable snapshots, SIGKILL mid-run)"
# Crash-safety proof on the release binary (DESIGN §13): a threaded
# cycle-by-cycle run persisting checkpoints is SIGKILLed as soon as the
# first snapshot lands, resumed from the surviving cp-* file, and must
# report the exact simulated outcome of an uninterrupted baseline.
# The in-process twin of this check (both engines, refusal paths) runs
# in tests/persist_resume.rs; this stage exercises the shipped binary
# end to end, kill included.
cps_dir="$(mktemp -d /tmp/slacksim-ci-cps.XXXXXX)"
resume_flags=(--scheme cc --engine threaded --cores 2 --commit 200000 --checkpoint 700)
baseline="$(./target/release/slacksim "${resume_flags[@]}" \
    | grep -E '^(execution time|committed|violations)')"
./target/release/slacksim "${resume_flags[@]}" --save-state "$cps_dir" \
    > /dev/null 2>&1 &
victim=$!
for _ in $(seq 1 2000); do
    compgen -G "$cps_dir/cp-*[0-9]" > /dev/null && break
    kill -0 "$victim" 2> /dev/null || break
    sleep 0.005
done
kill -KILL "$victim" 2> /dev/null || true
wait "$victim" 2> /dev/null || true
snapshot="$(ls "$cps_dir"/cp-* | grep -v '\.tmp$' | sort | tail -n 1)"
resumed="$(./target/release/slacksim "${resume_flags[@]}" --resume "$snapshot" \
    | grep -E '^(execution time|committed|violations)')"
[ "$baseline" = "$resumed" ] || {
    echo "ci: resumed report diverged from uninterrupted baseline" >&2
    printf 'baseline:\n%s\nresumed:\n%s\n' "$baseline" "$resumed" >&2
    exit 1
}
rm -rf "$cps_dir"

echo "==> directory smoke (64-core sharded uncore, SIGKILL kill-and-resume)"
# Directory-uncore proof on the release binary (DESIGN §17): a 64-core
# run — four times past the snooping bus's cap — through the sharded
# MESI directory banks, first uninterrupted, then SIGKILLed as soon as
# the first durable snapshot lands and resumed from it. The resumed
# report must match the uninterrupted baseline exactly: bank states,
# sharer sets and per-bank monitors all cross the versioned byte
# format. The in-process conformance twin ({16,64} cores, all three
# engines) runs in crates/conformance; this stage exercises the
# shipped binary end to end at directory scale, kill included.
dir_cps="$(mktemp -d /tmp/slacksim-ci-dir.XXXXXX)"
dir_flags=(--uncore directory --cores 64 --benchmark fft --scheme cc \
    --engine threaded --commit 200000 --checkpoint 700)
dir_baseline="$(./target/release/slacksim "${dir_flags[@]}" \
    | grep -E '^(execution time|committed|violations)')"
./target/release/slacksim "${dir_flags[@]}" --save-state "$dir_cps" \
    > /dev/null 2>&1 &
victim=$!
for _ in $(seq 1 2000); do
    compgen -G "$dir_cps/cp-*[0-9]" > /dev/null && break
    kill -0 "$victim" 2> /dev/null || break
    sleep 0.005
done
kill -KILL "$victim" 2> /dev/null || true
wait "$victim" 2> /dev/null || true
dir_snapshot="$(ls "$dir_cps"/cp-* | grep -v '\.tmp$' | sort | tail -n 1)"
dir_resumed="$(./target/release/slacksim "${dir_flags[@]}" --resume "$dir_snapshot" \
    | grep -E '^(execution time|committed|violations)')"
[ "$dir_baseline" = "$dir_resumed" ] || {
    echo "ci: directory resumed report diverged from uninterrupted baseline" >&2
    printf 'baseline:\n%s\nresumed:\n%s\n' "$dir_baseline" "$dir_resumed" >&2
    exit 1
}
rm -rf "$dir_cps"

echo "==> sharded manager-tree smoke (64-core directory, --shards 4, report validation)"
# Manager-tree proof on the release binary (DESIGN §18): the same
# 64-core directory configuration through a 4-way manager tree must
# reproduce the single-manager report exactly under cycle-by-cycle —
# the shard count is a host knob, never a simulated-results knob — and
# the artifacts the sharded run emits (live heartbeat with per-shard
# forwarding-queue depths, profile CSV with the shard-service site)
# must validate through `slacksim report`.
shard_dir="$(mktemp -d /tmp/slacksim-ci-shard.XXXXXX)"
sharded="$(./target/release/slacksim "${dir_flags[@]}" --shards 4 \
    --profile --profile-csv "$shard_dir/prof.csv" \
    --live-status "$shard_dir/live.json" --live-every 50 \
    | grep -E '^(execution time|committed|violations)')"
[ "$dir_baseline" = "$sharded" ] || {
    echo "ci: sharded 64-core report diverged from the single-manager baseline" >&2
    printf 'baseline:\n%s\nsharded:\n%s\n' "$dir_baseline" "$sharded" >&2
    exit 1
}
./target/release/slacksim report "$shard_dir/live.json" "$shard_dir/prof.csv" \
    > /dev/null || {
    echo "ci: sharded run artifacts failed report validation" >&2; exit 1; }
rm -rf "$shard_dir"

echo "==> bench smoke (engine_throughput, short run, checked against baseline)"
# Short run into a scratch path, compared against the committed
# BENCH_threaded.json: every engine/scheme row must keep at least 0.25x
# the committed median throughput or the bench exits non-zero. The
# tolerance is deliberately generous — the smoke run's commit target is
# ~7x smaller than the committed full run's, so fixed startup costs weigh
# more and shared CI hosts add noise — but it still catches the silent
# multi-x regressions that previously drifted past this stage unnoticed.
smoke_out="$(mktemp /tmp/BENCH_threaded_smoke.XXXXXX.json)"
smoke_out_batched="$(mktemp /tmp/BENCH_batched_smoke.XXXXXX.json)"
smoke_out_directory="$(mktemp /tmp/BENCH_directory_smoke.XXXXXX.json)"
# Paths must be absolute: cargo bench runs the binary with the package
# directory as its working directory, not the repo root.
SLACKSIM_BENCH_SMOKE=1 SLACKSIM_BENCH_OUT="$smoke_out" \
SLACKSIM_BENCH_OUT_BATCHED="$smoke_out_batched" \
SLACKSIM_BENCH_OUT_DIRECTORY="$smoke_out_directory" \
SLACKSIM_BENCH_BASELINE="$PWD/BENCH_threaded.json" \
SLACKSIM_BENCH_BASELINE_BATCHED="$PWD/BENCH_batched.json" \
SLACKSIM_BENCH_BASELINE_DIRECTORY="$PWD/BENCH_directory.json" \
SLACKSIM_BENCH_TOLERANCE=0.25 \
    cargo bench -p slacksim-bench --bench engine_throughput --offline
test -s "$smoke_out" || { echo "ci: bench smoke produced no output" >&2; exit 1; }
test -s "$smoke_out_batched" || {
    echo "ci: bench smoke produced no batched output" >&2; exit 1; }
test -s "$smoke_out_directory" || {
    echo "ci: bench smoke produced no directory output" >&2; exit 1; }
rm -f "$smoke_out" "$smoke_out_batched" "$smoke_out_directory"

echo "==> profiler + live-telemetry smoke (artifact validity, overhead gate)"
# Self-profiling proof on the release binary (DESIGN §14): a profiled
# run with a live status file must produce a host-time table covering
# the run, a valid heartbeat and a valid profile CSV — both validated
# through `slacksim report`, which parses them with the in-tree
# obs::json parser and exits non-zero on any malformed artifact. Then
# the overhead gate: profiling must cost ≤3% throughput against the
# same binary uninstrumented, measured as the best ratio over five
# interleaved plain/profiled pairs so shared-host load drift cancels
# within each pair (the bench-smoke stage above already anchors
# absolute throughput to BENCH_threaded.json). The
# gate runs the bounded-slack operating point — span cost amortizes
# over a burst of cycles there. Cycle-by-cycle is the worst case for
# span density (every core crosses ~4 span boundaries per simulated
# cycle, each comparable in cost to one model tick; DESIGN §14), so
# its overhead is printed informationally rather than gated. The gate
# bounds the *fraction*, so every hot-path speedup tightens it for
# free: the batched-engine PR cut per-cycle model cost ~40% without
# touching span cost, which moved the measured fraction from ~1.5% to
# ~2.5% — the allowance tracks that (same absolute span cost, smaller
# denominator), not a profiler regression.
prof_dir="$(mktemp -d /tmp/slacksim-ci-prof.XXXXXX)"
prof_flags=(--scheme cc --engine threaded --cores 8 --commit 500000)
gate_flags=(--scheme bounded --bound 64 --engine threaded --cores 8 --commit 500000)
prof_out="$(./target/release/slacksim "${prof_flags[@]}" --profile \
    --profile-csv "$prof_dir/prof.csv" --live-status "$prof_dir/live.json" \
    --live-every 50)"
grep -q "host-time profile:" <<< "$prof_out" || {
    echo "ci: profiled run printed no host-time table" >&2; exit 1; }
test -s "$prof_dir/live.json" || {
    echo "ci: live run left no status file" >&2; exit 1; }
[ "$(wc -l < "$prof_dir/live.json")" -eq 1 ] || {
    echo "ci: status file must hold exactly one heartbeat line" >&2; exit 1; }
./target/release/slacksim report "$prof_dir/live.json" "$prof_dir/prof.csv" \
    > /dev/null || {
    echo "ci: emitted artifacts failed report validation" >&2; exit 1; }
speed_of() { # one in-process kcycles/s sample: speed_of FLAG...
    ./target/release/slacksim "$@" 2> /dev/null \
        | awk '/^speed/ { print int($3) }'
}
best_of() { # best of 5 samples
    local best=0 s
    for _ in 1 2 3 4 5; do
        s="$(speed_of "$@")"
        [ "$s" -gt "$best" ] && best="$s"
    done
    echo "$best"
}
cc_plain="$(best_of "${prof_flags[@]}")"
cc_prof="$(best_of "${prof_flags[@]}" --profile)"
echo "    cc span-density worst case (informational): plain ${cc_plain}, profiled ${cc_prof} kcycles/s"
# Interleave plain/profiled pairs and gate on the best per-pair ratio:
# shared-host load drifts on a timescale of seconds, so two separate
# best-of-N blocks can sample different load regimes and report the
# drift as profiler overhead. Back-to-back pairs see the same regime,
# and the cleanest pair bounds the true overhead from above.
best_ratio=0
plain_speed=0
prof_speed=0
for _ in 1 2 3 4 5; do
    p="$(speed_of "${gate_flags[@]}")"
    q="$(speed_of "${gate_flags[@]}" --profile --live-status "$prof_dir/live.json")"
    [ "$p" -gt 0 ] || continue
    r="$((q * 100 / p))"
    if [ "$r" -gt "$best_ratio" ]; then
        best_ratio="$r" plain_speed="$p" prof_speed="$q"
    fi
done
echo "    bounded-64 gate: plain ${plain_speed}, profiled ${prof_speed} kcycles/s (best pair, ${best_ratio}%)"
[ "$best_ratio" -ge 97 ] || {
    echo "ci: profiler overhead exceeds 3% (plain ${plain_speed}, profiled ${prof_speed} kcycles/s)" >&2
    exit 1
}
rm -rf "$prof_dir"

echo "==> campaign smoke (6-job sweep, kill-free resume, report validation)"
# Campaign-runner proof on the release binary (DESIGN §16): a tiny
# 6-job design-space sweep — the {cc, bounded, quantum} x 2-seed grid
# emitted by the bench harness's gen_sweep — runs to completion on 3
# workers, its streamed and final aggregates validate through
# `slacksim report`, and an immediate rerun against the same directory
# skips every settled job. The SIGKILL variant of this stage (campaign
# kill-and-resume, aggregate bit-identity) runs in tests/campaign.rs.
camp_dir="$(mktemp -d /tmp/slacksim-ci-camp.XXXXXX)"
./target/release/gen_sweep --commit 20000 --cores 2 > "$camp_dir/sweep.json"
./target/release/slacksim sweep --spec "$camp_dir/sweep.json" \
    --dir "$camp_dir/campaign" --workers 3 \
    --live-status "$camp_dir/beats.jsonl" --live-every 50 > /dev/null
[ "$(tail -n +2 "$camp_dir/campaign/aggregate.csv" | wc -l)" -eq 6 ] || {
    echo "ci: campaign aggregate must hold 6 job rows" >&2; exit 1; }
./target/release/slacksim report "$camp_dir/campaign/aggregate.csv" \
    "$camp_dir/campaign/aggregate.jsonl" "$camp_dir/campaign/manifest.json" \
    "$camp_dir/beats.jsonl" > /dev/null || {
    echo "ci: campaign artifacts failed report validation" >&2; exit 1; }
rerun="$(./target/release/slacksim sweep --dir "$camp_dir/campaign")"
grep -q "6 skipped" <<< "$rerun" || {
    echo "ci: campaign rerun must skip all settled jobs, got: $rerun" >&2
    exit 1
}
rm -rf "$camp_dir"

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "ci: all green"
