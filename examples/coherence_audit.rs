//! A look inside the target CMP substrate: MESI coherence traffic, bus
//! utilisation and cache behaviour across the four benchmarks, measured
//! under the gold-standard cycle-by-cycle scheme.
//!
//! ```sh
//! cargo run --release --example coherence_audit
//! ```

use slacksim::{Benchmark, EngineKind, Simulation};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:>10} | {:>7} | {:>9} | {:>9} | {:>8} | {:>8} | {:>8} | {:>8} | {:>8}",
        "benchmark",
        "CPI",
        "bus txn/k",
        "conflicts",
        "L1D miss",
        "L2 miss",
        "c2c xfer",
        "invals",
        "barriers"
    );

    for benchmark in Benchmark::ALL {
        let r = Simulation::new(benchmark)
            .commit_target(300_000)
            .engine(EngineKind::Sequential)
            .run()?;
        let committed = r.committed.max(1) as f64;
        let l1d_acc = (r.core_total("l1d_hits") + r.core_total("l1d_misses")).max(1) as f64;
        let l2_acc = (r.uncore.get("l2_hits") + r.uncore.get("l2_misses")).max(1) as f64;
        println!(
            "{:>10} | {:>7.3} | {:>9.2} | {:>9} | {:>7.2}% | {:>7.2}% | {:>8} | {:>8} | {:>8}",
            benchmark.name(),
            r.cpi(),
            1000.0 * r.uncore.get("bus_transactions") as f64 / committed,
            r.uncore.get("bus_conflicts"),
            100.0 * r.core_total("l1d_misses") as f64 / l1d_acc,
            100.0 * r.uncore.get("l2_misses") as f64 / l2_acc,
            r.uncore.get("cache_to_cache_transfers"),
            r.core_total("invalidations_received"),
            r.uncore.get("barriers_completed"),
        );
    }

    println!("\nper-core detail (Barnes, core 0):");
    let r = Simulation::new(Benchmark::Barnes)
        .commit_target(200_000)
        .engine(EngineKind::Sequential)
        .run()?;
    println!("{}", r.per_core[0]);
    Ok(())
}
