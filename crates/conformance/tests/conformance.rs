//! The conformance suite: differential oracle matrix, deterministic
//! schedule fuzzing, and the seeded-mutation detection proof.
//!
//! Budget control: commit targets scale with the build profile, and the
//! number of schedule seeds per loop comes from
//! [`smoke_seeds`] (`SLACKSIM_CONFORMANCE_SEEDS` in CI).
//!
//! Any failing virtual-schedule assertion prints a
//! `conformance-repro v1 ...` line; paste it into
//! `slacksim_conformance::run_repro` to replay the exact schedule.

use slacksim::scheme::Scheme;
use slacksim::{
    Benchmark, CheckpointMode, EngineKind, SpeculationConfig, UncoreKind, ViolationSelect,
};
use slacksim_conformance::{
    check_invariants, fingerprint, run_engine, run_engine_on, run_engine_sharded, run_repro,
    run_resumed, run_resumed_on, run_speculative, run_virtual, shrink, smoke_seeds, Mutation,
    SchedPolicy, VirtCase,
};

/// Commit target for matrix cells: small enough for debug CI, larger in
/// release where the engines are ~20x faster.
fn target() -> u64 {
    if cfg!(debug_assertions) {
        2_000
    } else {
        10_000
    }
}

const BENCHES: [Benchmark; 2] = [Benchmark::Fft, Benchmark::WaterNsquared];
const CORE_COUNTS: [usize; 3] = [1, 4, 8];

fn schemes() -> [Scheme; 3] {
    [
        Scheme::CycleByCycle,
        Scheme::BoundedSlack { bound: 8 },
        Scheme::Quantum { quantum: 64 },
    ]
}

fn virt_case(
    policy: SchedPolicy,
    sched_seed: u64,
    bench: Benchmark,
    cores: usize,
    scheme: Scheme,
) -> VirtCase {
    VirtCase {
        policy,
        sched_seed,
        mutation: Mutation::None,
        bench,
        cores,
        shards: 1,
        scheme,
        target: target(),
        seed: 1,
    }
}

/// Sequential vs threaded-native across the full
/// {scheme x workload x cores} matrix — plus the batched engine on the
/// quantum cells, the only scheme it accepts: every cell completes and
/// upholds the metamorphic invariants on every engine.
#[test]
fn differential_matrix_upholds_invariants_on_both_engines() {
    for bench in BENCHES {
        for scheme in schemes() {
            for cores in CORE_COUNTS {
                let mut engines = vec![EngineKind::Sequential, EngineKind::Threaded];
                if matches!(scheme, Scheme::Quantum { .. }) {
                    engines.push(EngineKind::Batched);
                }
                for engine in engines {
                    let r = run_engine(bench, cores, &scheme, target(), 1, engine);
                    assert!(
                        r.committed >= target(),
                        "{engine:?}/{bench}/{cores}c/{}: commit target missed",
                        scheme.name()
                    );
                    check_invariants(&r, &scheme).unwrap_or_else(|e| {
                        panic!("{engine:?}/{bench}/{cores}c/{}: {e}", scheme.name())
                    });
                }
            }
        }
    }
}

/// Cycle-by-cycle runs are engine-independent: the sequential engine,
/// the native threaded engine and a virtually-scheduled threaded run
/// must be fingerprint-identical.
#[test]
fn cycle_by_cycle_is_exact_across_all_three_engines() {
    for bench in BENCHES {
        for cores in [1, 4] {
            let scheme = Scheme::CycleByCycle;
            let seq = run_engine(bench, cores, &scheme, target(), 1, EngineKind::Sequential);
            let thr = run_engine(bench, cores, &scheme, target(), 1, EngineKind::Threaded);
            let case = virt_case(SchedPolicy::RandomWalk, 1, bench, cores, scheme);
            let (virt, diag) = run_virtual(&case);
            assert_eq!(
                fingerprint(&seq),
                fingerprint(&thr),
                "{bench}/{cores}c: sequential vs threaded-native"
            );
            assert_eq!(
                fingerprint(&seq),
                fingerprint(&virt),
                "{bench}/{cores}c: sequential vs threaded-virtual (`{case}`)"
            );
            assert_eq!(diag.lost_wakeups, 0, "`{case}`");
        }
    }
}

/// Quantum runs are engine-independent where the design guarantees it:
/// the batched (quantum-compiled) engine must reproduce the sequential
/// engine's fingerprint bit-for-bit across {FFT, WATER} x {1, 4, 8}
/// cores — barrier servicing defers every cross-core event to the quantum
/// boundary and resolves in timestamp order, so collapsing the per-cycle
/// dispatch into one `run_window` call per core must be invisible.
#[test]
fn quantum_is_exact_between_sequential_and_batched_engines() {
    let scheme = Scheme::Quantum { quantum: 64 };
    for bench in BENCHES {
        for cores in CORE_COUNTS {
            let seq = run_engine(bench, cores, &scheme, target(), 1, EngineKind::Sequential);
            let bat = run_engine(bench, cores, &scheme, target(), 1, EngineKind::Batched);
            assert_eq!(
                fingerprint(&seq),
                fingerprint(&bat),
                "{bench}/{cores}c: sequential vs batched"
            );
            check_invariants(&bat, &scheme)
                .unwrap_or_else(|e| panic!("{bench}/{cores}c batched: {e}"));
        }
    }
}

/// Under cycle-by-cycle the outcome must be *schedule*-independent: any
/// policy, any schedule seed, same fingerprint.
#[test]
fn cycle_by_cycle_is_schedule_independent() {
    let bench = Benchmark::Fft;
    let cores = 4;
    let reference = fingerprint(&run_engine(
        bench,
        cores,
        &Scheme::CycleByCycle,
        target(),
        1,
        EngineKind::Sequential,
    ));
    let policies = [
        SchedPolicy::RandomWalk,
        SchedPolicy::ParkRace,
        SchedPolicy::Starve { victim: 2 },
        SchedPolicy::DrainPreempt,
    ];
    for policy in policies {
        for sched_seed in 0..smoke_seeds() {
            let case = virt_case(policy, sched_seed, bench, cores, Scheme::CycleByCycle);
            let (r, diag) = run_virtual(&case);
            assert_eq!(fingerprint(&r), reference, "`{case}`");
            assert_eq!(diag.lost_wakeups, 0, "`{case}`");
            assert!(!diag.timeout_fallback, "`{case}`");
        }
    }
}

/// Adversarial schedules against the slack schemes: the unmutated
/// protocol must never lose a wakeup or trip the livelock fallback, and
/// every run must uphold the invariants.
#[test]
fn adversarial_schedules_lose_no_wakeups_under_slack() {
    let policies = [
        SchedPolicy::RandomWalk,
        SchedPolicy::ParkRace,
        SchedPolicy::Starve { victim: 1 },
        SchedPolicy::DrainPreempt,
    ];
    for scheme in [
        Scheme::BoundedSlack { bound: 8 },
        Scheme::Quantum { quantum: 64 },
    ] {
        for policy in policies {
            for sched_seed in 0..smoke_seeds() {
                let case = virt_case(policy, sched_seed, Benchmark::Fft, 4, scheme.clone());
                let (r, diag) = run_virtual(&case);
                assert!(r.committed >= target(), "`{case}`");
                check_invariants(&r, &scheme).unwrap_or_else(|e| panic!("`{case}`: {e}"));
                assert_eq!(diag.lost_wakeups, 0, "`{case}`");
                assert!(!diag.timeout_fallback, "`{case}`");
                assert!(diag.decisions > 0 && diag.switches > 0, "`{case}`");
            }
        }
    }
}

/// Checkpoint hand-off mid-drain: speculation under the virtual
/// scheduler exercises the stop-sync / snapshot-mailbox protocol in
/// both checkpoint modes (delta mode additionally drives the
/// base-hand-back rollback path), and a fixed case replays to the
/// identical final committed state.
#[test]
fn speculative_checkpoint_handoff_replays_deterministically() {
    let run = |sched_seed: u64, mode: CheckpointMode| {
        let sched = slacksim_conformance::VirtualSched::new(
            4,
            SchedPolicy::DrainPreempt,
            sched_seed,
            Mutation::None,
        );
        let report = slacksim::Simulation::new(Benchmark::Fft)
            .cores(4)
            .scheme(Scheme::BoundedSlack { bound: 16 })
            .engine(EngineKind::Threaded)
            .commit_target(target())
            .seed(1)
            .speculation(
                SpeculationConfig::speculative(500, ViolationSelect::all()).with_mode(mode),
            )
            .host_sched(slacksim::SchedRef::new(sched.clone()))
            .run()
            .expect("speculative virtual run");
        (report, sched.diagnostics())
    };
    for mode in [CheckpointMode::Full, CheckpointMode::Delta] {
        let (a, diag_a) = run(3, mode);
        let (b, diag_b) = run(3, mode);
        assert!(a.committed >= target(), "{mode:?}");
        assert!(
            a.kernel.get("checkpoints") > 0,
            "{mode:?}: checkpoints taken"
        );
        assert_eq!(diag_a.lost_wakeups, 0, "{mode:?}");
        assert!(!diag_a.timeout_fallback, "{mode:?}");
        // Same schedule seed -> bit-identical run, including diagnostics.
        assert_eq!(fingerprint(&a), fingerprint(&b), "{mode:?}");
        assert_eq!(diag_a, diag_b, "{mode:?}");
    }
}

/// DESIGN §11's delta-checkpoint oracle: on the deterministic sequential
/// engine, a speculative run with incremental (delta) checkpoints must be
/// fingerprint-identical to the same run with full clones — capture,
/// in-place snapshot maintenance, and reverse-apply rollback reconstruct
/// exactly the state a full clone would have, across greedy (bounded)
/// and barrier (quantum) pacing and across checkpoint intervals.
#[test]
fn delta_checkpoints_match_full_clones_exactly() {
    for bench in BENCHES {
        for scheme in [
            Scheme::BoundedSlack { bound: 16 },
            Scheme::Quantum { quantum: 64 },
        ] {
            for interval in [500u64, 2_000] {
                let spec = SpeculationConfig::speculative(interval, ViolationSelect::all());
                let run = |mode| {
                    run_speculative(
                        bench,
                        4,
                        &scheme,
                        target(),
                        1,
                        EngineKind::Sequential,
                        spec.with_mode(mode),
                    )
                };
                let full = run(CheckpointMode::Full);
                let delta = run(CheckpointMode::Delta);
                let label = format!("{bench}/{}/I={interval}", scheme.name());
                assert_eq!(
                    fingerprint(&full),
                    fingerprint(&delta),
                    "{label}: delta mode diverged from full clones"
                );
                for key in ["checkpoints", "rollbacks", "wasted_cycles", "replay_cycles"] {
                    assert_eq!(
                        full.kernel.get(key),
                        delta.kernel.get(key),
                        "{label}: kernel counter {key}"
                    );
                }
                check_invariants(&delta, &scheme).unwrap_or_else(|e| panic!("{label}: {e}"));
            }
        }
    }
}

/// Greedy (bounded-slack) speculation across the engine matrix, in both
/// checkpoint modes: every cell completes past its commit target, takes
/// checkpoints, and upholds the metamorphic invariants. Cross-engine
/// equality is deliberately not asserted — threaded slack timing is
/// host-nondeterministic; mode equivalence is proven exactly on the
/// sequential engine above.
#[test]
fn speculative_greedy_matrix_upholds_invariants_on_both_engines() {
    let scheme = Scheme::BoundedSlack { bound: 16 };
    for engine in [EngineKind::Sequential, EngineKind::Threaded] {
        for mode in [CheckpointMode::Full, CheckpointMode::Delta] {
            let spec = SpeculationConfig::speculative(500, ViolationSelect::all()).with_mode(mode);
            let r = run_speculative(Benchmark::Fft, 4, &scheme, target(), 1, engine, spec);
            let label = format!("{engine:?}/{mode:?}");
            assert!(r.committed >= target(), "{label}: commit target missed");
            assert!(r.kernel.get("checkpoints") > 0, "{label}: no checkpoints");
            check_invariants(&r, &scheme).unwrap_or_else(|e| panic!("{label}: {e}"));
        }
    }
}

/// Cycle-by-cycle runs stay violation-free under checkpointing, and the
/// checkpoint mode is invisible: full and delta modes reproduce the
/// plain CC fingerprint on both engines.
#[test]
fn cycle_by_cycle_checkpointing_is_mode_independent() {
    let scheme = Scheme::CycleByCycle;
    let reference = fingerprint(&run_engine(
        Benchmark::Fft,
        4,
        &scheme,
        target(),
        1,
        EngineKind::Sequential,
    ));
    for engine in [EngineKind::Sequential, EngineKind::Threaded] {
        for mode in [CheckpointMode::Full, CheckpointMode::Delta] {
            let spec = SpeculationConfig::checkpoint_only(500).with_mode(mode);
            let r = run_speculative(Benchmark::Fft, 4, &scheme, target(), 1, engine, spec);
            let label = format!("{engine:?}/{mode:?}");
            assert_eq!(
                r.violations.total(),
                0,
                "{label}: CC must be violation-free"
            );
            assert!(r.kernel.get("checkpoints") > 0, "{label}: no checkpoints");
            assert_eq!(
                fingerprint(&r),
                reference,
                "{label}: checkpointing perturbed the CC fingerprint"
            );
        }
    }
}

/// Durable-snapshot oracle (DESIGN §13): persist a cycle-by-cycle run's
/// checkpoints to disk, resume the newest snapshot — state having
/// round-tripped through the versioned byte format — and continue to the
/// full commit target. On both engines the resumed run must reproduce
/// the uninterrupted run's fingerprint exactly, which proves every model
/// save/load pair restores bit-identical state.
#[test]
fn durable_snapshot_resume_matches_uninterrupted_run() {
    let scheme = Scheme::CycleByCycle;
    let interval = 300;
    for bench in BENCHES {
        for engine in [EngineKind::Sequential, EngineKind::Threaded] {
            let spec = SpeculationConfig::checkpoint_only(interval);
            let baseline = run_speculative(bench, 4, &scheme, target(), 1, engine, spec);
            let resumed = run_resumed(bench, 4, &scheme, target(), 1, engine, interval);
            assert_eq!(
                fingerprint(&resumed),
                fingerprint(&baseline),
                "{engine:?}/{bench}: resumed run diverged from uninterrupted run"
            );
        }
    }
}

/// Directory-uncore rows of the differential matrix: past the snooping
/// bus's 16-core cap, the sharded directory must be just as
/// engine-independent as the bus. At {16, 64} cores the sequential, the
/// native threaded and the batched engine must reproduce identical
/// fingerprints wherever the design guarantees exactness — cycle-by-cycle
/// for sequential vs threaded, quantum for sequential vs batched — and
/// every run must route all coherence through the banks (directory
/// transactions observed, zero bus transactions).
#[test]
fn directory_uncore_is_exact_across_all_three_engines() {
    for bench in BENCHES {
        for cores in [16usize, 64] {
            let cc = Scheme::CycleByCycle;
            let seq = run_engine_on(
                UncoreKind::Directory,
                bench,
                cores,
                &cc,
                target(),
                1,
                EngineKind::Sequential,
            );
            assert!(
                seq.uncore.get("dir_transactions") > 0,
                "{bench}/{cores}c: no directory traffic"
            );
            assert_eq!(
                seq.uncore.get("bus_transactions"),
                0,
                "{bench}/{cores}c: bus traffic under the directory uncore"
            );
            let thr = run_engine_on(
                UncoreKind::Directory,
                bench,
                cores,
                &cc,
                target(),
                1,
                EngineKind::Threaded,
            );
            assert_eq!(
                fingerprint(&seq),
                fingerprint(&thr),
                "{bench}/{cores}c: directory sequential vs threaded-native"
            );
            check_invariants(&thr, &cc)
                .unwrap_or_else(|e| panic!("{bench}/{cores}c directory threaded: {e}"));

            let quantum = Scheme::Quantum { quantum: 64 };
            let seq_q = run_engine_on(
                UncoreKind::Directory,
                bench,
                cores,
                &quantum,
                target(),
                1,
                EngineKind::Sequential,
            );
            let bat = run_engine_on(
                UncoreKind::Directory,
                bench,
                cores,
                &quantum,
                target(),
                1,
                EngineKind::Batched,
            );
            assert_eq!(
                fingerprint(&seq_q),
                fingerprint(&bat),
                "{bench}/{cores}c: directory sequential vs batched"
            );
            check_invariants(&bat, &quantum)
                .unwrap_or_else(|e| panic!("{bench}/{cores}c directory batched: {e}"));
        }
    }
}

/// Directory banks under bounded slack still uphold the metamorphic
/// invariants at 64 cores on every engine that accepts the scheme, and
/// the per-bank timestamp monitors actually fire (the violation tally
/// includes the `directory` class once slack is allowed).
#[test]
fn directory_uncore_upholds_invariants_under_slack_at_scale() {
    let scheme = Scheme::BoundedSlack { bound: 8 };
    for engine in [EngineKind::Sequential, EngineKind::Threaded] {
        let r = run_engine_on(
            UncoreKind::Directory,
            Benchmark::Fft,
            64,
            &scheme,
            target(),
            1,
            engine,
        );
        assert!(r.committed >= target(), "{engine:?}: commit target missed");
        check_invariants(&r, &scheme).unwrap_or_else(|e| panic!("{engine:?}: {e}"));
    }
}

/// Durable-snapshot oracle for the directory uncore: a 64-core
/// cycle-by-cycle run persists checkpoints, a second process-independent
/// run resumes the newest snapshot — bank states, sharer sets and
/// per-bank monitors having crossed the versioned byte format — and
/// must reproduce the uninterrupted fingerprint exactly.
#[test]
fn directory_durable_resume_matches_uninterrupted_run() {
    let scheme = Scheme::CycleByCycle;
    let interval = 300;
    for engine in [EngineKind::Sequential, EngineKind::Threaded] {
        let spec = SpeculationConfig::checkpoint_only(interval);
        let baseline = slacksim::Simulation::new(Benchmark::Fft)
            .uncore(UncoreKind::Directory)
            .cores(64)
            .scheme(scheme.clone())
            .engine(engine)
            .commit_target(target())
            .seed(1)
            .speculation(spec)
            .run()
            .expect("directory baseline run");
        let resumed = run_resumed_on(
            UncoreKind::Directory,
            Benchmark::Fft,
            64,
            &scheme,
            target(),
            1,
            engine,
            interval,
        );
        assert_eq!(
            fingerprint(&resumed),
            fingerprint(&baseline),
            "{engine:?}: directory resumed run diverged from uninterrupted run"
        );
    }
}

/// Sharded manager-tree rows of the differential matrix: under
/// cycle-by-cycle the two-level tree must be invisible. At {16, 64}
/// cores x {FFT, WATER}, a threaded run with `--shards {2, 4}` through
/// the directory uncore must reproduce the sequential fingerprint
/// bit-for-bit; a 64-core bounded-slack run through the widest tree
/// must still complete and uphold the metamorphic invariants (slack
/// timing is host-nondeterministic by design, so no exactness there).
#[test]
fn sharded_manager_tree_is_exact_across_the_matrix() {
    for bench in BENCHES {
        for cores in [16usize, 64] {
            let cc = Scheme::CycleByCycle;
            let seq = run_engine_on(
                UncoreKind::Directory,
                bench,
                cores,
                &cc,
                target(),
                1,
                EngineKind::Sequential,
            );
            for shards in [2usize, 4] {
                let thr = run_engine_sharded(
                    UncoreKind::Directory,
                    bench,
                    cores,
                    &cc,
                    target(),
                    1,
                    shards,
                );
                assert_eq!(
                    fingerprint(&seq),
                    fingerprint(&thr),
                    "{bench}/{cores}c/{shards}sh: sequential vs sharded threaded"
                );
                check_invariants(&thr, &cc)
                    .unwrap_or_else(|e| panic!("{bench}/{cores}c/{shards}sh: {e}"));
            }
        }
    }
    let bounded = Scheme::BoundedSlack { bound: 8 };
    let r = run_engine_sharded(
        UncoreKind::Directory,
        Benchmark::Fft,
        64,
        &bounded,
        target(),
        1,
        4,
    );
    assert!(r.committed >= target(), "64c/4sh bounded: target missed");
    check_invariants(&r, &bounded).unwrap_or_else(|e| panic!("64c/4sh bounded: {e}"));
}

/// Adversarial virtual schedules on the shard threads themselves: with
/// 2- and 4-way manager trees over 8 cores, every policy must complete
/// without losing a wakeup or tripping the livelock fallback; under
/// cycle-by-cycle the sharded virtual run must additionally reproduce
/// the sequential fingerprint exactly, whatever interleaving the policy
/// forces between cores, shard managers and the root.
#[test]
fn sharded_adversarial_schedules_lose_no_wakeups() {
    let reference = fingerprint(&run_engine(
        Benchmark::Fft,
        8,
        &Scheme::CycleByCycle,
        target(),
        1,
        EngineKind::Sequential,
    ));
    let policies = [
        SchedPolicy::RandomWalk,
        SchedPolicy::ParkRace,
        SchedPolicy::Starve { victim: 1 },
        SchedPolicy::DrainPreempt,
    ];
    for shards in [2usize, 4] {
        for policy in policies {
            for sched_seed in 0..smoke_seeds() {
                let mut case =
                    virt_case(policy, sched_seed, Benchmark::Fft, 8, Scheme::CycleByCycle);
                case.shards = shards;
                let (r, diag) = run_virtual(&case);
                assert_eq!(fingerprint(&r), reference, "`{case}`");
                assert_eq!(diag.lost_wakeups, 0, "`{case}`");
                assert!(!diag.timeout_fallback, "`{case}`");

                let scheme = Scheme::BoundedSlack { bound: 8 };
                let mut case = virt_case(policy, sched_seed, Benchmark::Fft, 8, scheme.clone());
                case.shards = shards;
                let (r, diag) = run_virtual(&case);
                assert!(r.committed >= target(), "`{case}`");
                check_invariants(&r, &scheme).unwrap_or_else(|e| panic!("`{case}`: {e}"));
                assert_eq!(diag.lost_wakeups, 0, "`{case}`");
                assert!(!diag.timeout_fallback, "`{case}`");
            }
        }
    }
}

/// Identical repro line -> identical run: the whole virtual execution is
/// a pure function of the case, sharded or not.
#[test]
fn virtual_runs_replay_bit_identically() {
    let mut case = virt_case(
        SchedPolicy::RandomWalk,
        5,
        Benchmark::WaterNsquared,
        4,
        Scheme::BoundedSlack { bound: 8 },
    );
    let (a, diag_a) = run_virtual(&case);
    let (b, diag_b) = run_repro(&case.to_string()).expect("line replays");
    assert_eq!(fingerprint(&a), fingerprint(&b), "`{case}`");
    assert_eq!(diag_a, diag_b, "`{case}`");

    case.shards = 2;
    let (a, diag_a) = run_virtual(&case);
    let line = case.to_string();
    assert!(line.contains(" shards=2"), "{line}");
    let (b, diag_b) = run_repro(&line).expect("sharded line replays");
    assert_eq!(fingerprint(&a), fingerprint(&b), "`{case}`");
    assert_eq!(diag_a, diag_b, "`{case}`");
}

/// Violations are monotone non-decreasing as the slack bound grows
/// (sequential engine, pinned seeds — the paper's Figure 4 relation).
#[test]
fn violations_monotone_in_slack_bound() {
    for bench in BENCHES {
        let mut prev = 0u64;
        for bound in [1u64, 4, 16, 64] {
            let r = run_engine(
                bench,
                4,
                &Scheme::BoundedSlack { bound },
                target(),
                1,
                EngineKind::Sequential,
            );
            let v = r.violations.total();
            assert!(
                v >= prev,
                "{bench}: violations dropped from {prev} to {v} at bound {bound}"
            );
            prev = v;
        }
    }
}

/// The harness catches a seeded protocol mutation: dropping one unpark
/// delivery strands a core, which the no-timeout virtual parks surface
/// as `lost_wakeups > 0`. The failure then shrinks to a minimal case
/// with a replayable one-line repro.
#[test]
fn dropped_unpark_is_caught_and_shrinks_to_a_repro_line() {
    let fails = |c: &VirtCase| run_virtual(c).1.lost_wakeups > 0;
    let mut found = None;
    'search: for sched_seed in 0..smoke_seeds() {
        for nth in 0..48 {
            let case = VirtCase {
                policy: SchedPolicy::ParkRace,
                sched_seed,
                mutation: Mutation::DropUnpark { nth },
                bench: Benchmark::Fft,
                cores: 2,
                shards: 1,
                scheme: Scheme::BoundedSlack { bound: 8 },
                target: target(),
                seed: 1,
            };
            if fails(&case) {
                found = Some(case);
                break 'search;
            }
        }
    }
    let found = found.expect("schedule explorer must catch the dropped-unpark mutation");
    let shrunk = shrink(found.clone(), fails);
    let line = shrunk.to_string();
    println!("shrunk repro: {line}");
    let (_, diag) = run_repro(&line).expect("shrunk line replays");
    assert!(diag.dropped_unparks > 0, "{line}");
    assert!(diag.timeout_fallback, "{line}");
    assert!(diag.lost_wakeups > 0, "{line}");
    assert!(shrunk.target <= found.target && shrunk.cores <= found.cores);
}

/// Self-profiling and live telemetry are observation-only: a run with
/// `--profile` and a live heartbeat emitter attached must be
/// bit-identical to an uninstrumented run. The assertion is only
/// meaningful on configurations that are deterministic to begin with —
/// cycle-by-cycle on any engine (its fingerprint is
/// schedule-independent, so any perturbation would surface exactly),
/// plus everything on the sequential and batched engines. The threaded
/// engine under real slack is host-nondeterministic *by design*: two
/// uninstrumented runs may already differ, so bit-identity there would
/// test the host scheduler's mood, not the instrumentation — that combo
/// still runs instrumented and asserts the observation-side contract
/// (run completes, profile attached, heartbeat emitted).
#[test]
fn profiling_and_live_telemetry_leave_fingerprints_bit_identical() {
    use std::sync::{Arc, Mutex};
    use std::time::Duration;

    use slacksim::{LiveConfig, Simulation};

    for engine in [
        EngineKind::Sequential,
        EngineKind::Threaded,
        EngineKind::Batched,
    ] {
        let schemes = [
            Scheme::CycleByCycle,
            if engine == EngineKind::Batched {
                Scheme::Quantum { quantum: 50 }
            } else {
                Scheme::BoundedSlack { bound: 8 }
            },
        ];
        for scheme in schemes {
            let deterministic = engine != EngineKind::Threaded || scheme == Scheme::CycleByCycle;
            let plain = run_engine(Benchmark::Fft, 4, &scheme, target(), 1, engine);
            let capture = Arc::new(Mutex::new(String::new()));
            let mut sim = Simulation::new(Benchmark::Fft);
            sim.cores(4)
                .scheme(scheme.clone())
                .engine(engine)
                .commit_target(target())
                .seed(1)
                .profile(true)
                .live(
                    LiveConfig::new()
                        .every(Duration::from_millis(1))
                        .to_capture(Arc::clone(&capture)),
                );
            let instrumented = sim.run().expect("instrumented run completes");
            if deterministic {
                assert_eq!(
                    fingerprint(&plain),
                    fingerprint(&instrumented),
                    "{engine:?}/{scheme:?}: instrumentation perturbed the simulation"
                );
            } else {
                assert!(
                    instrumented.committed >= target(),
                    "{engine:?}/{scheme:?}: instrumented run fell short of its target"
                );
            }
            let prof = instrumented.prof.as_ref().expect("profile attached");
            assert!(prof.total_self_ns() > 0, "profile recorded host time");
            assert!(
                !capture.lock().unwrap().is_empty(),
                "emitter produced at least the terminal beat"
            );
        }
    }
}

/// The campaign pool under the virtual scheduler: replaying the same
/// schedule seed reproduces the exact per-worker job schedule (steal
/// decisions and all), while job *results* are schedule-independent —
/// the pool may only decide where a job runs, never what it computes.
#[test]
fn campaign_pool_schedule_is_deterministic_under_virtual_sched() {
    use std::sync::Arc;

    use slacksim::slacksim_core::campaign::run_jobs;
    use slacksim::SchedRef;
    use slacksim_conformance::VirtualSched;

    let policies = [
        SchedPolicy::RandomWalk,
        SchedPolicy::ParkRace,
        SchedPolicy::Starve { victim: 1 },
        SchedPolicy::DrainPreempt,
    ];
    let mut schedules = Vec::new();
    for policy in policies {
        for seed in 0..smoke_seeds() {
            let run = |seed: u64| {
                // 3 pool tasks: the manager plus 2 spawned workers, the
                // same task vocabulary as a 2-core threaded engine.
                let sched = VirtualSched::new(2, policy, seed, Mutation::None);
                let sref = SchedRef::new(Arc::clone(&sched) as Arc<_>);
                let jobs: Vec<u64> = (0..12).collect();
                run_jobs(jobs, 3, &sref, |_, idx, j| {
                    assert_eq!(idx as u64, j);
                    j.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                })
            };
            let (results_a, outcome_a) = run(seed);
            let (results_b, outcome_b) = run(seed);
            assert_eq!(
                outcome_a.per_worker_jobs, outcome_b.per_worker_jobs,
                "{policy:?}/seed {seed}: same seed must replay the same schedule"
            );
            // Exactly-once execution and schedule-independent results,
            // whatever interleaving the policy forced.
            let mut seen: Vec<usize> = outcome_a.per_worker_jobs.concat();
            seen.sort_unstable();
            assert_eq!(seen, (0..12).collect::<Vec<usize>>());
            assert_eq!(
                results_a,
                (0..12u64)
                    .map(|j| j.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                    .collect::<Vec<u64>>(),
                "{policy:?}/seed {seed}: results depend only on the job"
            );
            assert_eq!(results_a, results_b);
            schedules.push(outcome_a.per_worker_jobs);
        }
    }
    // The explorer must actually explore: across policies and seeds at
    // least two distinct pool schedules were exercised.
    schedules.sort();
    schedules.dedup();
    assert!(
        schedules.len() > 1,
        "schedule fuzzing never varied the pool schedule"
    );
}

/// Campaign-vs-solo oracle under adversarial pool schedules: simulation
/// jobs run on a virtually-scheduled work-stealing pool must produce
/// reports bit-identical to the same configurations run solo on the
/// native host, for every explored pool interleaving.
#[test]
fn pooled_simulation_jobs_match_solo_fingerprints_under_virtual_sched() {
    use std::sync::Arc;

    use slacksim::slacksim_core::campaign::run_jobs;
    use slacksim::SchedRef;
    use slacksim_conformance::VirtualSched;

    let scheme = Scheme::BoundedSlack { bound: 8 };
    let seeds: Vec<u64> = (1..=4).collect();
    let solo: Vec<_> = seeds
        .iter()
        .map(|&s| {
            fingerprint(&run_engine(
                Benchmark::Fft,
                2,
                &scheme,
                target(),
                s,
                EngineKind::Sequential,
            ))
        })
        .collect();
    for sched_seed in 0..smoke_seeds() {
        let sched = VirtualSched::new(1, SchedPolicy::RandomWalk, sched_seed, Mutation::None);
        let sref = SchedRef::new(Arc::clone(&sched) as Arc<_>);
        let (reports, outcome) = run_jobs(seeds.clone(), 2, &sref, |_, _, seed| {
            run_engine(
                Benchmark::Fft,
                2,
                &scheme,
                target(),
                seed,
                EngineKind::Sequential,
            )
        });
        assert_eq!(outcome.counts().iter().sum::<usize>(), 4);
        for (i, report) in reports.iter().enumerate() {
            assert_eq!(
                fingerprint(report),
                solo[i],
                "sched seed {sched_seed}: pooled job {i} diverged from its solo run"
            );
        }
    }
}
