//! Shared test helpers for stream generators (compiled into unit tests
//! and usable by downstream integration tests).

use slacksim_cmp::isa::{InstrStream, Op};

/// Operation counts observed over a stream prefix.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCensus {
    /// Load instructions.
    pub loads: u64,
    /// Store instructions.
    pub stores: u64,
    /// FP operations (add + mul classes).
    pub fp: u64,
    /// Branch instructions.
    pub branches: u64,
    /// Barrier arrivals.
    pub barriers: u64,
    /// Lock acquires.
    pub locks: u64,
    /// Lock releases.
    pub unlocks: u64,
}

/// Tallies the first `n` operations of a stream.
pub fn op_census(stream: &mut dyn InstrStream, n: u64) -> OpCensus {
    let mut c = OpCensus::default();
    for _ in 0..n {
        match stream.next_instr().op {
            Op::Load { .. } => c.loads += 1,
            Op::Store { .. } => c.stores += 1,
            Op::FpAlu | Op::FpMul => c.fp += 1,
            Op::Branch { .. } => c.branches += 1,
            Op::Barrier { .. } => c.barriers += 1,
            Op::LockAcquire { .. } => c.locks += 1,
            Op::LockRelease { .. } => c.unlocks += 1,
            _ => {}
        }
    }
    c
}

/// Collects the barrier ids in the first `n` operations.
pub fn barrier_ids(stream: &mut dyn InstrStream, n: u64) -> Vec<u32> {
    let mut ids = Vec::new();
    for _ in 0..n {
        if let Op::Barrier { id } = stream.next_instr().op {
            ids.push(id);
        }
    }
    ids
}

/// Asserts that two streams built by the same constructor produce
/// identical prefixes, and that `clone_box` preserves position.
///
/// # Panics
///
/// Panics when determinism or clone fidelity is violated.
pub fn determinism_check(make: impl Fn() -> Box<dyn InstrStream>) {
    let mut a = make();
    let mut b = make();
    for i in 0..5_000 {
        assert_eq!(a.next_instr(), b.next_instr(), "diverged at {i}");
    }
    // Clone mid-stream and compare continuations.
    let mut c = a.clone_box();
    for i in 0..5_000 {
        assert_eq!(a.next_instr(), c.next_instr(), "clone diverged at {i}");
    }
}
