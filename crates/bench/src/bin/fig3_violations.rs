//! Regenerates Figure 3: bus and cache-map violation rates vs slack bound.

use slacksim_bench::experiments::fig3;
use slacksim_bench::scale::Scale;

fn main() {
    let scale = Scale::from_env(200_000);
    let points = fig3::measure(&scale);
    let (bus, map) = fig3::render(&points);
    println!("{bus}");
    println!("{map}");
}
