//! Execution engines: the machinery that drives target models under a
//! slack scheme.
//!
//! The kernel is generic over the simulated hardware through two traits:
//!
//! * [`CoreModel`] — one instance per target core, advanced cycle by cycle
//!   by its (logical or physical) core thread;
//! * [`UncoreModel`] — the shared portion of the target (lower cache
//!   levels, interconnect, synchronisation device), advanced by the
//!   simulation manager as events arrive.
//!
//! Three engines execute the same semantics:
//!
//! * [`SequentialEngine`] runs everything
//!   on the calling thread, emulating host-scheduling nondeterminism with a
//!   seeded burst scheduler — fully reproducible, used for the accuracy
//!   experiments (Figures 3) and for deterministic tests;
//! * [`ThreadedEngine`] spawns one host
//!   thread per target core plus the manager logic, exactly as SlackSim
//!   maps simulations onto a host CMP — used for the wall-clock experiments
//!   (Figure 4, Tables 2–5);
//! * [`BatchedEngine`] compiles the quantum scheme into an execution
//!   strategy: each core runs a whole quantum in one
//!   [`CoreModel::run_window`] call with cross-core events staged locally
//!   and resolved in timestamp order only at quantum boundaries (DESIGN
//!   §15).

mod batched;
mod sequential;
mod threaded;

pub use batched::BatchedEngine;
pub use sequential::SequentialEngine;
pub use threaded::ThreadedEngine;

use std::fmt;

use crate::event::{CoreId, Inbox, Timestamped};
use crate::rng::Xoshiro256;
use crate::scheme::{Pacer, Scheme};
use crate::speculative::{IntervalTracker, SpeculationConfig, SpeculationStats};
use crate::stats::Counters;
use crate::time::Cycle;
use crate::violation::{ViolationEvent, ViolationTally};

/// Per-cycle execution context handed to [`CoreModel::tick`].
///
/// Provides the core's local time, access to due incoming events, and the
/// outgoing event buffer (the core's *OutQ*).
#[derive(Debug)]
pub struct TickCtx<'a, E> {
    now: Cycle,
    inbox: &'a mut Inbox<E>,
    outbox: &'a mut Vec<Timestamped<E>>,
}

impl<'a, E> TickCtx<'a, E> {
    /// Creates a context for simulating the cycle at `now`.
    pub fn new(now: Cycle, inbox: &'a mut Inbox<E>, outbox: &'a mut Vec<Timestamped<E>>) -> Self {
        TickCtx { now, inbox, outbox }
    }

    /// The core's local time: the cycle being simulated.
    #[inline]
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Pops the next incoming event due at or before the current cycle.
    ///
    /// An event whose timestamp has already passed (the core ran ahead of
    /// the manager under slack) is returned immediately; the model applies
    /// it at the current local time — the paper's simulated-time
    /// distortion.
    #[inline]
    pub fn pop_event(&mut self) -> Option<Timestamped<E>> {
        self.inbox.pop_due(self.now)
    }

    /// Emits an event stamped with the current local time.
    #[inline]
    pub fn emit(&mut self, payload: E) {
        self.outbox.push(Timestamped::new(self.now, payload));
    }

    /// Number of pending (not yet due) incoming events.
    pub fn pending_events(&self) -> usize {
        self.inbox.len()
    }
}

/// A simulated target core: owns all core-private state (pipeline, L1
/// caches, workload position) and advances one cycle per [`tick`] call.
///
/// Models must be [`Clone`] so the engines can take checkpoint snapshots,
/// and [`Send`] so the threaded engine can move them onto core threads.
///
/// [`tick`]: CoreModel::tick
pub trait CoreModel: Clone + Send + 'static {
    /// The event payload exchanged with the uncore via OutQ/InQ.
    type Event: Send + Clone + fmt::Debug + 'static;

    /// Simulates exactly one target-clock cycle at `ctx.now()` and returns
    /// the number of instructions committed during that cycle.
    ///
    /// The model must consume every due incoming event (via
    /// [`TickCtx::pop_event`]) before or while simulating the cycle.
    fn tick(&mut self, ctx: &mut TickCtx<'_, Self::Event>) -> u32;

    /// Simulates every cycle in `[from, to)` in one call, emitting into
    /// `staged` (the core's staging buffer), and returns the number of
    /// instructions committed over the window.
    ///
    /// This is the batched engine's hot loop: within the window the core
    /// sees only the events already in its inbox — exactly the quantum
    /// scheme's contract, where cross-core interaction is deferred to the
    /// next boundary. The default implementation ticks cycle by cycle and
    /// is always semantically correct; models may override it with an
    /// equivalent fast-forwarding loop (the override must stay
    /// bit-identical to the tick loop — see the conformance oracle).
    fn run_window(
        &mut self,
        from: Cycle,
        to: Cycle,
        inbox: &mut Inbox<Self::Event>,
        staged: &mut Vec<Timestamped<Self::Event>>,
    ) -> u64 {
        let mut committed = 0u64;
        let mut now = from;
        while now < to {
            let mut ctx = TickCtx::new(now, inbox, staged);
            committed += u64::from(self.tick(&mut ctx));
            now += 1;
        }
        committed
    }

    /// Total instructions committed by this core so far.
    fn committed(&self) -> u64;

    /// Model statistics for the final report.
    fn counters(&self) -> Counters;
}

/// Responses produced while servicing one event: deliveries back to cores
/// plus any violations the model's monitors detected.
#[derive(Debug)]
pub struct ServiceSink<E> {
    deliveries: Vec<(CoreId, Timestamped<E>)>,
    violations: Vec<ViolationEvent>,
}

impl<E> ServiceSink<E> {
    /// Creates an empty sink.
    pub fn new() -> Self {
        ServiceSink {
            deliveries: Vec::new(),
            violations: Vec::new(),
        }
    }

    /// Queues an event for delivery to `to`'s InQ.
    #[inline]
    pub fn deliver(&mut self, to: CoreId, ev: Timestamped<E>) {
        self.deliveries.push((to, ev));
    }

    /// Reports a detected simulation violation.
    #[inline]
    pub fn report_violation(&mut self, violation: ViolationEvent) {
        self.violations.push(violation);
    }

    /// Drains the queued deliveries.
    pub fn take_deliveries(&mut self) -> std::vec::Drain<'_, (CoreId, Timestamped<E>)> {
        self.deliveries.drain(..)
    }

    /// Drains the reported violations.
    pub fn take_violations(&mut self) -> std::vec::Drain<'_, ViolationEvent> {
        self.violations.drain(..)
    }
}

impl<E> Default for ServiceSink<E> {
    fn default() -> Self {
        ServiceSink::new()
    }
}

/// The shared (uncore) portion of the target: lower-level caches, the
/// interconnect and the synchronisation device, simulated by the manager.
pub trait UncoreModel<E>: Clone + Send + 'static {
    /// Services one event, in the manager's arrival order. Completion
    /// events and violations go into `sink`.
    fn service(&mut self, from: CoreId, ev: Timestamped<E>, sink: &mut ServiceSink<E>);

    /// Model statistics for the final report.
    fn counters(&self) -> Counters;

    /// Drops violation-monitor entries that can never trip again.
    ///
    /// The engines call this at every committed checkpoint with `horizon`
    /// equal to the checkpoint's global cycle: every operation that can
    /// still arrive — including rollback replays, which restart from this
    /// very checkpoint — carries a timestamp at or past `horizon`, so a
    /// monitor whose high-water mark is at or below it can never flag
    /// again and may be forgotten. Keeps keyed-monitor memory (and the
    /// per-checkpoint re-clone cost) flat on long runs. The default does
    /// nothing; models with keyed monitors should override.
    fn compact_monitors(&mut self, _horizon: Cycle) {}
}

/// How the deterministic engine perturbs core scheduling to emulate the
/// host's thread-scheduling nondeterminism.
///
/// Each time a core is selected it advances a *burst* of up to `max_burst`
/// cycles (uniformly drawn, capped by the pacer's window). Larger bursts
/// model coarser host preemption and produce more event reordering at equal
/// slack bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BurstPolicy {
    /// Maximum burst length in cycles (≥ 1).
    pub max_burst: u64,
    /// Percentage of scheduling decisions that pick the most-lagging
    /// runnable core instead of a uniformly random one (0–100). Models
    /// the host scheduler's long-run fairness: drift between threads
    /// stays bounded even under unbounded slack, as it does on a real
    /// multicore host where every simulation thread owns a hardware
    /// context.
    pub lag_bias_percent: u8,
}

impl BurstPolicy {
    /// Creates a policy with the given maximum burst length and the
    /// default fairness bias.
    ///
    /// # Panics
    ///
    /// Panics if `max_burst` is 0.
    pub fn new(max_burst: u64) -> Self {
        assert!(max_burst >= 1, "max burst must be at least 1");
        BurstPolicy {
            max_burst,
            lag_bias_percent: 50,
        }
    }

    /// Sets the fairness bias (clamped to 100).
    #[must_use]
    pub fn with_lag_bias(mut self, percent: u8) -> Self {
        self.lag_bias_percent = percent.min(100);
        self
    }
}

impl Default for BurstPolicy {
    fn default() -> Self {
        BurstPolicy {
            max_burst: 16,
            lag_bias_percent: 50,
        }
    }
}

/// Why a run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FinishReason {
    /// The aggregate committed-instruction target was reached.
    CommitTarget,
    /// The safety cycle cap was hit first.
    CycleCap,
}

/// Engine configuration shared by both engines.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// The slack scheme pacing the run.
    pub scheme: Scheme,
    /// Stop once this many instructions have been committed across all
    /// cores (the paper simulates 100 M committed instructions).
    pub commit_target: u64,
    /// Hard safety cap on global time; the run reports
    /// [`FinishReason::CycleCap`] if reached first.
    pub max_cycles: u64,
    /// Optional checkpointing / speculation.
    pub speculation: Option<SpeculationConfig>,
    /// Violation sampling period in global cycles for schemes without
    /// their own (adaptive schemes use their configured period).
    pub sample_period: u64,
    /// Implementation cap on how far any core may lead global time under
    /// *greedy* (non-barrier) schemes, in cycles. On the paper's host a
    /// core thread cannot outrun the manager by more than scheduling
    /// noise ("thousands of cycles" under unbounded slack, §1); our ticks
    /// are orders of magnitude cheaper than SimpleScalar's, so without a
    /// cap a spinning core would race millions of cycles ahead of the
    /// manager and distort simulated time. Barrier schemes are unaffected.
    pub max_lead: u64,
    /// Seed for the deterministic engine's burst scheduler.
    pub seed: u64,
    /// Burst policy for the deterministic engine (ignored by the threaded
    /// engine, which inherits real host scheduling).
    pub burst: BurstPolicy,
    /// Optional observability instrumentation: when set, the engine records
    /// a trace and samples metrics, attaching the result to
    /// `SimReport::obs`. When `None`, instrumentation sites cost one
    /// relaxed atomic load each.
    pub obs: Option<crate::obs::ObsConfig>,
    /// Host scheduler the threaded engine waits through. Defaults to the
    /// native (production) scheduler; conformance tests install a virtual
    /// scheduler here to explore thread interleavings deterministically.
    /// Ignored by the sequential engine.
    pub sched: crate::sched::SchedRef,
    /// Optional host-time self-profiler. When set (and enabled) the
    /// engines time every [`crate::obs::ProfSite`] with scoped spans and
    /// attach the per-site profile to `SimReport::prof`. When `None`,
    /// every instrumentation site costs one relaxed atomic load.
    pub prof: Option<crate::obs::Profiler>,
    /// Optional live telemetry: when set with at least one sink, the
    /// engines publish progress atomics and spawn a heartbeat emitter
    /// thread for the duration of the run (see [`crate::obs::live`]).
    pub live: Option<crate::obs::LiveConfig>,
    /// Manager-tree width for the threaded engine. `1` (the default) runs
    /// the classic single-manager loop unchanged. `N > 1` splits the cores
    /// into `N` contiguous shards: shards `1..N` get their own
    /// shard-manager thread consolidating their cores' OutQs into a
    /// shard-to-root forwarding ring and publishing the shard's minimum
    /// local time, while the root manager (which owns shard 0 directly)
    /// reconciles the per-shard minima into the global time and services
    /// all events. Clamped to the core count at run start; ignored by the
    /// sequential and batched engines.
    pub shards: usize,
}

impl EngineConfig {
    /// Creates a configuration with the given scheme and commit target and
    /// sensible defaults for everything else.
    pub fn new(scheme: Scheme, commit_target: u64) -> Self {
        EngineConfig {
            scheme,
            commit_target,
            max_cycles: 1 << 40,
            speculation: None,
            sample_period: 1024,
            seed: 1,
            burst: BurstPolicy::default(),
            max_lead: 256,
            obs: None,
            sched: crate::sched::SchedRef::native(),
            prof: None,
            live: None,
            shards: 1,
        }
    }

    /// The greedy-scheme window cap: `global + max_lead` (never below 1).
    pub fn lead_cap(&self, global: Cycle) -> Cycle {
        global.saturating_add(self.max_lead.max(1))
    }

    /// The effective sampling period: an adaptive scheme's own period, or
    /// the engine-level default otherwise.
    pub fn effective_sample_period(&self) -> u64 {
        match &self.scheme {
            Scheme::Adaptive(cfg) => cfg.sample_period.max(1),
            _ => self.sample_period.max(1),
        }
    }
}

/// Errors produced by an engine run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// No core was simulated (empty core vector).
    NoCores,
    /// The engine detected that no core could make progress.
    Stalled {
        /// Global time at which progress stopped.
        at: Cycle,
    },
    /// An on-disk snapshot could not be restored (unreadable, corrupt, or
    /// taken under a different run configuration).
    Resume(String),
    /// Durable state saving could not be set up (e.g. the checkpoint
    /// directory could not be created).
    Persist(String),
    /// The run configuration is invalid (e.g. a core count outside the
    /// selected interconnect's supported range).
    Config(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::NoCores => write!(f, "simulation has no cores"),
            EngineError::Stalled { at } => {
                write!(f, "simulation stalled at global cycle {at}")
            }
            EngineError::Resume(why) => write!(f, "cannot resume: {why}"),
            EngineError::Persist(why) => write!(f, "cannot persist state: {why}"),
            EngineError::Config(why) => write!(f, "invalid configuration: {why}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// A borrowed view of one committed checkpoint, handed to the engine's
/// save hook (see [`SequentialEngine::with_save_hook`] and
/// [`ThreadedEngine::with_save_hook`]) right after the checkpoint commits.
///
/// The view exposes exactly the state a durable snapshot needs: the full
/// model state (cores, pending inboxes, uncore) plus the engine-side
/// bookkeeping that must survive a process restart. At a committed
/// checkpoint every core's local clock equals `global` and the manager's
/// global queue is empty, so the inboxes are the only in-flight events.
pub struct CheckpointView<'a, C: CoreModel, U> {
    /// 1-based checkpoint ordinal (total checkpoints taken so far).
    pub ordinal: u64,
    /// Global cycle the checkpoint was committed at.
    pub global: Cycle,
    /// Per-core model state and pending (undelivered) events.
    pub cores: Vec<(&'a C, &'a Inbox<C::Event>)>,
    /// The shared uncore state.
    pub uncore: &'a U,
    /// Aggregate committed instructions at the checkpoint.
    pub committed: u64,
    /// Violations surviving in the committed timeline.
    pub tally: ViolationTally,
    /// Violations detected overall, including rolled-back work.
    pub detected: ViolationTally,
    /// Next adaptive/violation sampling point in global cycles.
    pub next_sample: u64,
    /// Tally snapshot at the start of the current sampling window.
    pub last_sample_tally: ViolationTally,
    /// Speculation activity so far (checkpoints, rollbacks, …).
    pub spec_stats: SpeculationStats,
    /// Interval statistics (Tables 3/4), when speculation is on.
    pub tracker: Option<&'a IntervalTracker>,
    /// The pacer, carrying any adaptive/peer state.
    pub pacer: &'a dyn Pacer,
    /// The deterministic engine's burst-scheduler RNG (`None` on the
    /// threaded engine, which inherits real host scheduling).
    pub rng: Option<&'a Xoshiro256>,
    /// Adaptive bound trace accumulated so far.
    pub bound_trace: &'a [(Cycle, u64)],
    /// Largest clock spread observed so far (kernel counter).
    pub max_spread: u64,
    /// Cumulative events forwarded through each remote shard-manager's
    /// ring (threaded engine with `shards > 1`: one entry per shard
    /// `1..shards`). Empty for single-manager runs and the other engines.
    pub shard_forwarded: Vec<u64>,
}

/// Called at every committed checkpoint with a [`CheckpointView`]; returns
/// the persisted container size in bytes, or `None` when the snapshot was
/// not durably written (persistence failed or was skipped) — the engine
/// records the outcome as a trace event either way and carries on.
pub type SaveHook<C, U> = Box<dyn FnMut(&CheckpointView<'_, C, U>) -> Option<u64>>;

/// Restored engine state for crash-safe resume: the owned counterpart of
/// [`CheckpointView`], applied at `run()` start in place of fresh state.
pub struct EngineResume<C: CoreModel, U> {
    /// Global cycle to resume from.
    pub global: Cycle,
    /// Per-core model state and pending events.
    pub cores: Vec<(C, Inbox<C::Event>)>,
    /// The shared uncore state.
    pub uncore: U,
    /// Pacer rebuilt from the run's scheme with its dynamic state restored.
    pub pacer: Box<dyn Pacer>,
    /// Aggregate committed instructions at the snapshot.
    pub committed: u64,
    /// Violations surviving in the committed timeline.
    pub tally: ViolationTally,
    /// Violations detected overall, including rolled-back work.
    pub detected: ViolationTally,
    /// Next sampling point in global cycles.
    pub next_sample: u64,
    /// Tally snapshot at the start of the current sampling window.
    pub last_sample_tally: ViolationTally,
    /// Speculation activity up to the snapshot.
    pub spec_stats: SpeculationStats,
    /// Interval statistics, when the snapshot was taken with speculation.
    pub tracker: Option<IntervalTracker>,
    /// Burst-scheduler RNG state (sequential-engine snapshots only).
    pub rng: Option<Xoshiro256>,
    /// Adaptive bound trace up to the snapshot.
    pub bound_trace: Vec<(Cycle, u64)>,
    /// Largest clock spread observed up to the snapshot.
    pub max_spread: u64,
    /// Per-remote-shard forwarded-event counts at the snapshot (threaded
    /// engine with `shards > 1`; empty otherwise). A resume under a
    /// different shard count folds the sum into the aggregate counter
    /// instead of reattributing it.
    pub shard_forwarded: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::AdaptiveConfig;

    #[test]
    fn tick_ctx_event_flow() {
        let mut inbox: Inbox<u32> = Inbox::new();
        inbox.deliver(Timestamped::new(Cycle::new(5), 7));
        inbox.deliver(Timestamped::new(Cycle::new(9), 8));
        let mut outbox = Vec::new();
        let mut ctx = TickCtx::new(Cycle::new(5), &mut inbox, &mut outbox);
        assert_eq!(ctx.now(), Cycle::new(5));
        assert_eq!(ctx.pop_event().unwrap().payload, 7);
        assert!(ctx.pop_event().is_none());
        assert_eq!(ctx.pending_events(), 1);
        ctx.emit(99);
        assert_eq!(outbox.len(), 1);
        assert_eq!(outbox[0].ts, Cycle::new(5));
    }

    #[test]
    fn sink_roundtrip() {
        use crate::violation::{ViolationEvent, ViolationKind};
        let mut sink: ServiceSink<u32> = ServiceSink::new();
        sink.deliver(CoreId::new(2), Timestamped::new(Cycle::new(3), 1));
        sink.report_violation(ViolationEvent {
            kind: ViolationKind::Bus,
            ts: Cycle::new(3),
            high_water: Cycle::new(5),
        });
        assert_eq!(sink.take_deliveries().count(), 1);
        assert_eq!(sink.take_violations().count(), 1);
        // Drained.
        assert_eq!(sink.take_deliveries().count(), 0);
    }

    #[test]
    fn config_defaults() {
        let cfg = EngineConfig::new(Scheme::CycleByCycle, 1000);
        assert_eq!(cfg.commit_target, 1000);
        assert!(cfg.speculation.is_none());
        assert_eq!(cfg.effective_sample_period(), 1024);
    }

    #[test]
    fn adaptive_overrides_sample_period() {
        let cfg = EngineConfig::new(
            Scheme::Adaptive(AdaptiveConfig {
                sample_period: 555,
                ..AdaptiveConfig::default()
            }),
            1000,
        );
        assert_eq!(cfg.effective_sample_period(), 555);
    }

    #[test]
    #[should_panic(expected = "max burst must be at least 1")]
    fn burst_policy_rejects_zero() {
        let _ = BurstPolicy::new(0);
    }

    #[test]
    fn engine_error_display() {
        assert_eq!(EngineError::NoCores.to_string(), "simulation has no cores");
        assert!(EngineError::Stalled { at: Cycle::new(9) }
            .to_string()
            .contains("9"));
    }
}
