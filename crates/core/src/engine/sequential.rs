//! The deterministic sequential engine.
//!
//! Runs the entire simulation on the calling thread while *emulating* the
//! parallel execution of SlackSim: each target core has a local time capped
//! by the pacer's window, and a seeded burst scheduler decides which core
//! advances next and for how many cycles — a reproducible stand-in for the
//! host OS scheduler's nondeterminism. The manager role (global queue
//! servicing, violation accounting, adaptive sampling, checkpointing and
//! rollback) is interleaved exactly as the threaded engine performs it.
//!
//! Because every run with the same configuration and seed is bit-identical,
//! this engine is the vehicle for the accuracy experiments (Figure 3) and
//! for the fully-deployed speculative rollback extension.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

use crate::checkpoint::{CheckpointMode, Checkpointable};
use crate::engine::{
    CheckpointView, CoreModel, EngineConfig, EngineError, EngineResume, FinishReason, SaveHook,
    ServiceSink, TickCtx, UncoreModel,
};
use crate::event::{CoreId, GlobalQueue, Inbox, Timestamped};
use crate::obs::live::NO_BOUND;
use crate::obs::{
    GaugeId, HistId, LiveStats, MetricsRegistry, ObsData, Phase, ProfSite, Profiler, QueueKind,
    TraceEvent, TraceHandle, Tracer,
};
use crate::rng::Xoshiro256;
use crate::scheme::{PaceSample, Pacer};
use crate::speculative::{IntervalTracker, SpeculationStats};
use crate::stats::{Counters, SimReport};
use crate::time::Cycle;
use crate::violation::ViolationTally;

/// Execution mode of the speculation state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Running under the configured base scheme.
    Base,
    /// Replaying in cycle-by-cycle mode after a rollback, until the next
    /// checkpoint boundary (guarantees forward progress, paper §5.1).
    Replay,
}

/// Everything restored on rollback. Always holds *full* state: under
/// [`CheckpointMode::Delta`] the model copies are brought up to date by
/// applying capture deltas in place (instead of re-cloning), and rollback
/// copies back only the units that diverged since the checkpoint
/// (`restore_from`) — the snapshot's *contents* are identical in both
/// modes, only the maintenance cost differs.
struct Snapshot<C: CoreModel, U> {
    cores: Vec<C>,
    uncore: U,
    /// Per-core model generation at the checkpoint (delta-mode baseline
    /// tokens; zero and unused under full mode).
    core_gens: Vec<u64>,
    /// Uncore generation at the checkpoint.
    uncore_gen: u64,
    locals: Vec<Cycle>,
    inboxes: Vec<Inbox<C::Event>>,
    tally: ViolationTally,
    committed: u64,
    global: Cycle,
    pacer: Box<dyn Pacer>,
    next_sample: u64,
    last_sample_tally: ViolationTally,
}

/// Deterministic single-threaded slack-simulation engine.
///
/// # Examples
///
/// See the crate-level documentation and the integration tests; the engine
/// is generic and needs a concrete [`CoreModel`]/[`UncoreModel`] pair such
/// as the ones in `slacksim-cmp`.
pub struct SequentialEngine<C: CoreModel, U: UncoreModel<C::Event>> {
    cores: Vec<C>,
    uncore: U,
    cfg: EngineConfig,
    save_hook: Option<SaveHook<C, U>>,
    resume: Option<EngineResume<C, U>>,
}

impl<C, U> SequentialEngine<C, U>
where
    C: CoreModel + Checkpointable,
    U: UncoreModel<C::Event> + Checkpointable,
{
    /// Creates an engine over the given target cores and uncore.
    pub fn new(cores: Vec<C>, uncore: U, cfg: EngineConfig) -> Self {
        SequentialEngine {
            cores,
            uncore,
            cfg,
            save_hook: None,
            resume: None,
        }
    }

    /// Installs a hook invoked after every committed checkpoint with a
    /// borrowed [`CheckpointView`] of the restorable state; the hook
    /// returns the number of bytes it persisted (or `None` on failure).
    #[must_use]
    pub fn with_save_hook(mut self, hook: SaveHook<C, U>) -> Self {
        self.save_hook = Some(hook);
        self
    }

    /// Starts the run from previously persisted state instead of cycle 0.
    #[must_use]
    pub fn with_resume(mut self, resume: EngineResume<C, U>) -> Self {
        self.resume = Some(resume);
        self
    }

    /// Runs the simulation to completion.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::NoCores`] for an empty core set and
    /// [`EngineError::Stalled`] if (defensively) no core can advance.
    pub fn run(self) -> Result<SimReport, EngineError> {
        let SequentialEngine {
            mut cores,
            mut uncore,
            cfg,
            mut save_hook,
            resume,
        } = self;
        let n = cores.len();
        if n == 0 {
            return Err(EngineError::NoCores);
        }
        let started = Instant::now();

        let mut pacer = cfg.scheme.clone().into_pacer();
        let sample_period = cfg.effective_sample_period();
        let mut locals = vec![Cycle::ZERO; n];
        let mut inboxes: Vec<Inbox<C::Event>> = (0..n).map(|_| Inbox::new()).collect();
        let mut gq: GlobalQueue<C::Event> = GlobalQueue::new();
        let mut sink: ServiceSink<C::Event> = ServiceSink::new();
        let mut outbox: Vec<Timestamped<C::Event>> = Vec::new();
        let mut rng = Xoshiro256::new(cfg.seed);

        // Violation accounting: `tally` is part of the restorable state,
        // `detected` is monotone (counts violations even if later rolled
        // back).
        let mut tally = ViolationTally::new();
        let mut detected = ViolationTally::new();
        let mut committed: u64 = 0;
        let mut next_sample = sample_period;
        let mut last_sample_tally = tally;
        let mut bound_trace: Vec<(Cycle, u64)> = Vec::new();

        // Observability: a disabled tracer keeps every record call at one
        // relaxed atomic load when no ObsConfig was given.
        let tracer = match cfg.obs {
            Some(o) => Tracer::new(o.trace_capacity),
            None => Tracer::disabled(),
        };
        let mut th = tracer.handle();

        // Host-time profiler: same disabled-cost contract as the tracer.
        // The whole run is one thread, so the coverage denominator is
        // wall * 1.
        let prof = cfg.prof.clone().unwrap_or_else(Profiler::disabled);
        let ph = prof.handle();

        // Live telemetry: the emitter is a plain observer thread reading
        // relaxed-published atomics; the simulation loop never blocks on it.
        let live_stats = Arc::new(LiveStats::new());
        live_stats
            .commit_target
            .store(cfg.commit_target, Ordering::Relaxed);
        let live_handle = cfg
            .live
            .as_ref()
            .filter(|l| l.has_sink())
            .map(|l| crate::obs::live::spawn(l.clone(), Arc::clone(&live_stats), prof.clone()));
        let live_on = live_handle.is_some();

        let mut metrics = MetricsRegistry::new(cfg.obs.map_or(1024, |o| o.sample_every));
        // Intern the per-core and scalar gauge keys once so the sampling
        // hot path below never formats or allocates key strings.
        let drift_ids: Vec<_> = (0..n)
            .map(|i| metrics.intern_gauge(&format!("drift.core{i}")))
            .collect();
        let slack_bound_id = metrics.intern_gauge("slack_bound");
        let violation_rate_id = metrics.intern_gauge("violation_rate");
        let globalq_depth_id = metrics.intern_gauge("globalq_depth");
        let globalq_depth_hist = metrics.intern_histogram("globalq_depth");
        let persist_bytes_id = metrics.intern_gauge("persist_bytes");
        let trace_dropped_id = metrics.intern_gauge("trace_dropped");
        let mut last_metrics_detected = 0u64;
        let mut last_metrics_cycle = 0u64;

        // Speculation state.
        let spec = cfg.speculation;
        let mut tracker = spec.map(|s| IntervalTracker::new(s.interval));
        let mut spec_stats = SpeculationStats::default();
        let mut mode = Mode::Base;
        let mut stop_at: Option<Cycle> = None;
        let mut next_cp_trigger: u64 = spec.map_or(u64::MAX, |s| s.interval);
        let mut replay_start = Cycle::ZERO;
        let mut pending_rollback = false;
        let cp_mode = spec.map_or(CheckpointMode::Full, |s| s.mode);

        // Largest observed clock spread (max local − min local): the
        // empirical slack, reported so tests can assert the bound.
        let mut max_spread: u64 = 0;
        // Resume: replace the freshly-built state wholesale with the
        // persisted snapshot before the first snapshot baseline is taken,
        // so rollback and delta capture both measure from restored state.
        let mut start_global = Cycle::ZERO;
        if let Some(res) = resume {
            if res.cores.len() != n {
                return Err(EngineError::Resume(format!(
                    "snapshot holds {} cores but the engine was built with {n}",
                    res.cores.len()
                )));
            }
            start_global = res.global;
            cores.clear();
            inboxes.clear();
            for (core, inbox) in res.cores {
                cores.push(core);
                inboxes.push(inbox);
            }
            uncore = res.uncore;
            pacer = res.pacer;
            committed = res.committed;
            tally = res.tally;
            detected = res.detected;
            next_sample = res.next_sample;
            last_sample_tally = res.last_sample_tally;
            spec_stats = res.spec_stats;
            if let Some(tr) = res.tracker {
                tracker = Some(tr);
            }
            if let Some(r) = res.rng {
                rng = r;
            }
            bound_trace = res.bound_trace;
            max_spread = res.max_spread;
            locals = vec![start_global; n];
            last_metrics_detected = detected.total();
            last_metrics_cycle = start_global.as_u64();
            next_cp_trigger = spec.map_or(u64::MAX, |s| start_global.as_u64() + s.interval);
            th.record(
                start_global,
                TraceEvent::StateRestore {
                    global: start_global,
                },
            );
        }

        let mut snapshot: Option<Snapshot<C, U>> = if spec.is_some() {
            // The initial state is trivially a (free) checkpoint. Under
            // delta mode, seed every model's capture baseline at its
            // current generation (an empty capture) so the first real
            // capture resolves exact per-component baselines.
            let (core_gens, uncore_gen) = if cp_mode == CheckpointMode::Delta {
                let gens: Vec<u64> = cores
                    .iter_mut()
                    .map(|c| {
                        let g = c.generation();
                        let _ = c.capture_delta(g);
                        g
                    })
                    .collect();
                let ug = uncore.generation();
                let _ = uncore.capture_delta(ug);
                (gens, ug)
            } else {
                (vec![0; n], 0)
            };
            Some(Snapshot {
                cores: cores.clone(),
                uncore: uncore.clone(),
                core_gens,
                uncore_gen,
                locals: locals.clone(),
                inboxes: inboxes.clone(),
                tally,
                committed,
                global: start_global,
                pacer: pacer.clone_box(),
                next_sample,
                last_sample_tally,
            })
        } else {
            None
        };

        let mut runnable: Vec<usize> = Vec::with_capacity(n);
        // Barrier schemes hold the window fixed until every core reaches it
        // and the batch is serviced; greedy schemes slide it with global
        // time every iteration.
        let mut window_end = pacer.window_end(start_global);
        let finish_reason;

        // The sequential engine has no out-queues to drain; the manager
        // drain site instead carries the dispatch machinery — window
        // computation, burst pick, feedback and metrics sampling. Nested
        // tick/service/checkpoint spans subtract themselves from its
        // self-time, so the profile still separates target work from
        // scheduling overhead. The span is re-entered every
        // ITER_SPAN_BATCH iterations rather than every iteration: a release
        // loop iteration is a few hundred ns, so per-iteration span
        // boundaries (two monotonic clock reads each) would leave several
        // percent of the wall-clock unattributed.
        const ITER_SPAN_BATCH: u32 = 64;
        let mut iter_span = ph.enter(ProfSite::ManagerDrain);
        let mut span_age = 0u32;
        // True exactly when every core sits on a window boundary whose
        // batch has been serviced (or at the start, trivially): the only
        // states where a barrier-scheme run may finish.
        let mut at_serviced_boundary = true;

        loop {
            span_age += 1;
            if span_age == ITER_SPAN_BATCH {
                span_age = 0;
                // Drop before re-entering: the guard pushes a frame on the
                // per-thread child stack, so the old span must pop first.
                drop(iter_span);
                iter_span = ph.enter(ProfSite::ManagerDrain);
            }
            let global = locals.iter().copied().min().expect("n >= 1");
            let furthest_now = locals.iter().copied().max().expect("n >= 1");
            max_spread = max_spread.max(furthest_now.saturating_sub(global));
            let barrier = mode == Mode::Replay || pacer.barrier_service();

            // Finish checks. Barrier schemes only stop at *serviced*
            // window boundaries so that the stopping point is
            // deterministic and identical to the threaded engine's — the
            // natural boundary the pacer published, never a clamped or
            // coincidental intermediate point (with one core "all locals
            // equal" holds mid-window too), so the batched engine (which
            // only observes boundaries) stops in the identical state.
            if at_serviced_boundary {
                debug_assert!(locals.iter().all(|&l| l == global) && gq.is_empty());
            }
            if committed >= cfg.commit_target && (!barrier || at_serviced_boundary) {
                finish_reason = FinishReason::CommitTarget;
                break;
            }
            if global.as_u64() >= cfg.max_cycles {
                finish_reason = FinishReason::CycleCap;
                break;
            }

            // Interval accounting for Tables 3/4 follows the fixed grid.
            if let Some(tr) = &mut tracker {
                tr.close_intervals_up_to(global);
            }

            // Violation-rate sampling and adaptive feedback.
            while global.as_u64() >= next_sample {
                let delta = tally.since(&last_sample_tally);
                let sample = PaceSample {
                    global: Cycle::new(next_sample),
                    window_cycles: sample_period,
                    window_violations: delta.total(),
                };
                let bound_before = pacer.current_bound();
                pacer.on_sample(&sample);
                last_sample_tally = tally;
                if let Some(b) = pacer.current_bound() {
                    bound_trace.push((Cycle::new(next_sample), b));
                    if let Some(old) = bound_before {
                        if old != b {
                            th.record(
                                Cycle::new(next_sample),
                                TraceEvent::BoundChange {
                                    old,
                                    new: b,
                                    rate: sample.rate(),
                                },
                            );
                        }
                    }
                }
                next_sample += sample_period;
            }

            // Metrics sampling (observability cadence, independent of the
            // pacer's feedback period).
            if cfg.obs.is_some() && metrics.sample_ready(global) {
                sample_metrics(SeqSampleCtx {
                    metrics: &mut metrics,
                    th: &mut th,
                    drift_ids: &drift_ids,
                    slack_bound_id,
                    violation_rate_id,
                    globalq_depth_id,
                    globalq_depth_hist,
                    trace_dropped_id,
                    tracer: &tracer,
                    locals: &locals,
                    global,
                    bound: pacer.current_bound(),
                    gq_len: gq.len() as u64,
                    detected_total: detected.total(),
                    last_metrics_cycle: &mut last_metrics_cycle,
                    last_metrics_detected: &mut last_metrics_detected,
                });
            }

            // Live telemetry: relaxed stores the emitter thread samples on
            // its own host-time cadence.
            if live_on {
                live_stats.global.store(global.as_u64(), Ordering::Relaxed);
                live_stats.committed.store(committed, Ordering::Relaxed);
                live_stats
                    .bound
                    .store(pacer.current_bound().unwrap_or(NO_BOUND), Ordering::Relaxed);
                live_stats
                    .violations
                    .store(tally.total(), Ordering::Relaxed);
                live_stats
                    .globalq_depth
                    .store(gq.len() as u64, Ordering::Relaxed);
                live_stats
                    .dropped_traces
                    .store(tracer.dropped_so_far(), Ordering::Relaxed);
                live_stats
                    .checkpoints
                    .store(spec_stats.checkpoints, Ordering::Relaxed);
                live_stats
                    .rollbacks
                    .store(spec_stats.rollbacks, Ordering::Relaxed);
            }

            // Checkpoint scheduling: once global time crosses the trigger,
            // stop-sync every core at one common local time.
            if spec.is_some() && stop_at.is_none() && global.as_u64() >= next_cp_trigger {
                let furthest = locals.iter().copied().max().expect("n >= 1");
                stop_at = Some(furthest.max(Cycle::new(next_cp_trigger)));
            }

            // Effective window for this iteration. Greedy schemes slide
            // continuously (uniformly, or per core for peer-to-peer
            // pacers); barrier schemes keep `window_end` until the batch
            // at the boundary has been serviced.
            let mut per_core: Option<Vec<Cycle>> = None;
            if !barrier {
                window_end = pacer.window_end(global).min(cfg.lead_cap(global));
                per_core = pacer.window_ends(&locals);
            }
            let cap = cfg.lead_cap(global);
            let win_for = |i: usize| -> Cycle {
                let base = per_core.as_ref().map_or(window_end, |v| v[i].min(cap));
                match stop_at {
                    Some(s) => base.min(s),
                    None => base,
                }
            };
            let win = match stop_at {
                Some(s) => window_end.min(s),
                None => window_end,
            };

            runnable.clear();
            runnable.extend((0..n).filter(|&i| locals[i] < win_for(i)));

            if runnable.is_empty() {
                // Every core reached the window end (or the stop point).
                if let Some(s) = stop_at {
                    if locals.iter().all(|&l| l == s) {
                        // Drain all outstanding events before snapshotting so
                        // queues are empty in the checkpoint.
                        {
                            let _span = ph.enter(ProfSite::ManagerService);
                            Self::service_all(
                                &mut gq,
                                &mut uncore,
                                &mut sink,
                                &mut inboxes,
                                &mut tally,
                                &mut detected,
                                &mut tracker,
                                &mut pending_rollback,
                                &spec,
                                mode,
                                &mut th,
                            );
                        }
                        if pending_rollback {
                            let _span = ph.enter(ProfSite::CheckpointRestore);
                            Self::rollback(
                                snapshot.as_ref().expect("rollback requires a snapshot"),
                                &mut cores,
                                &mut uncore,
                                &mut locals,
                                &mut inboxes,
                                &mut tally,
                                &mut committed,
                                &mut pacer,
                                &mut next_sample,
                                &mut last_sample_tally,
                                &mut gq,
                                &mut spec_stats,
                                global,
                                cp_mode,
                                &mut th,
                            );
                            mode = Mode::Replay;
                            replay_start = locals[0];
                            for i in 0..n {
                                th.record(
                                    replay_start,
                                    TraceEvent::PhaseBegin {
                                        core: CoreId::new(i as u16),
                                        phase: Phase::Replay,
                                    },
                                );
                            }
                            next_cp_trigger =
                                locals[0].as_u64() + spec.expect("spec enabled").interval;
                            stop_at = None;
                            pending_rollback = false;
                            window_end = locals[0] + 1;
                            continue;
                        }
                        if mode == Mode::Replay {
                            let replayed = s.saturating_sub(replay_start);
                            spec_stats.replay_cycles += replayed;
                            mode = Mode::Base;
                            th.record(
                                s,
                                TraceEvent::ReplayEnd {
                                    ordinal: spec_stats.rollbacks,
                                    replay_cycles: replayed,
                                },
                            );
                            for i in 0..n {
                                th.record(
                                    s,
                                    TraceEvent::PhaseEnd {
                                        core: CoreId::new(i as u16),
                                        phase: Phase::Replay,
                                    },
                                );
                            }
                        }
                        spec_stats.checkpoints += 1;
                        th.record(
                            Cycle::new(next_cp_trigger.min(s.as_u64())),
                            TraceEvent::Checkpoint {
                                ordinal: spec_stats.checkpoints,
                                overshoot: s.as_u64().saturating_sub(next_cp_trigger),
                            },
                        );
                        // Every event at or below the checkpoint has been
                        // serviced, so monitor entries whose high-water mark
                        // is at or below `s` can never flag again: drop them
                        // before capture so the snapshot stays compact too.
                        uncore.compact_monitors(s);
                        {
                            let _span = ph.enter(ProfSite::CheckpointCapture);
                            let snap = snapshot.as_mut().expect("spec enabled");
                            match cp_mode {
                                CheckpointMode::Full => {
                                    snap.cores = cores.clone();
                                    snap.uncore = uncore.clone();
                                }
                                CheckpointMode::Delta => {
                                    // Bring the standing snapshot up to this
                                    // checkpoint by applying each model's
                                    // delta against the previous one.
                                    let _apply = ph.enter(ProfSite::CheckpointApply);
                                    for (i, c) in cores.iter_mut().enumerate() {
                                        let d = c.capture_delta(snap.core_gens[i]);
                                        snap.cores[i].apply_delta(d);
                                        snap.core_gens[i] = c.generation();
                                    }
                                    let du = uncore.capture_delta(snap.uncore_gen);
                                    snap.uncore.apply_delta(du);
                                    snap.uncore_gen = uncore.generation();
                                }
                            }
                            snap.locals = locals.clone();
                            snap.inboxes = inboxes.clone();
                            snap.tally = tally;
                            snap.committed = committed;
                            snap.global = s;
                            snap.pacer = pacer.clone_box();
                            snap.next_sample = next_sample;
                            snap.last_sample_tally = last_sample_tally;
                        }
                        if let Some(hook) = save_hook.as_mut() {
                            let _span = ph.enter(ProfSite::PersistIo);
                            let view = CheckpointView {
                                ordinal: spec_stats.checkpoints,
                                global: s,
                                cores: cores.iter().zip(inboxes.iter()).collect(),
                                uncore: &uncore,
                                committed,
                                tally,
                                detected,
                                next_sample,
                                last_sample_tally,
                                spec_stats,
                                tracker: tracker.as_ref(),
                                pacer: &*pacer,
                                rng: Some(&rng),
                                bound_trace: &bound_trace,
                                max_spread,
                                shard_forwarded: Vec::new(),
                            };
                            let bytes = hook(&view).unwrap_or(0);
                            th.record(
                                s,
                                TraceEvent::StatePersist {
                                    ordinal: spec_stats.checkpoints,
                                    bytes,
                                },
                            );
                            metrics.gauge_by(persist_bytes_id, s, bytes as f64);
                        }
                        next_cp_trigger = s.as_u64() + spec.expect("spec enabled").interval;
                        stop_at = None;
                        window_end = pacer.window_end(s);
                        continue;
                    }
                }
                if barrier {
                    // Batch-service the window's events in timestamp order,
                    // then open the next window.
                    {
                        let _span = ph.enter(ProfSite::ManagerService);
                        Self::service_all(
                            &mut gq,
                            &mut uncore,
                            &mut sink,
                            &mut inboxes,
                            &mut tally,
                            &mut detected,
                            &mut tracker,
                            &mut pending_rollback,
                            &spec,
                            mode,
                            &mut th,
                        );
                    }
                    debug_assert!(!pending_rollback, "CC/quantum servicing cannot violate");
                    at_serviced_boundary = true;
                    window_end = if mode == Mode::Replay {
                        win + 1
                    } else {
                        pacer.window_end(win)
                    };
                    continue;
                }
                // Greedy mode: the slowest core always has headroom
                // (window_end > global), so this is unreachable unless a
                // pacer breaks its contract.
                return Err(EngineError::Stalled { at: global });
            }

            // Burst-schedule one core: mostly the laggard (host-scheduler
            // fairness), sometimes a random core (reordering noise).
            let pick = if cfg.burst.lag_bias_percent > 0
                && rng.chance(u64::from(cfg.burst.lag_bias_percent), 100)
            {
                runnable
                    .iter()
                    .copied()
                    .min_by_key(|&i| locals[i])
                    .expect("runnable not empty")
            } else {
                runnable[rng.next_below(runnable.len() as u64) as usize]
            };
            let burst = rng.next_range(1, cfg.burst.max_burst);
            let pick_win = win_for(pick);
            let head = pick_win.saturating_sub(locals[pick]).min(burst);
            if head > 0 {
                at_serviced_boundary = false;
            }
            if head > 0 && mode == Mode::Base {
                th.record(
                    locals[pick],
                    TraceEvent::PhaseBegin {
                        core: CoreId::new(pick as u16),
                        phase: Phase::Run,
                    },
                );
            }
            {
                let _span = ph.enter(ProfSite::CoreTick);
                for _ in 0..head {
                    let mut ctx = TickCtx::new(locals[pick], &mut inboxes[pick], &mut outbox);
                    let c = cores[pick].tick(&mut ctx);
                    committed += u64::from(c);
                    locals[pick] += 1;
                    if !barrier && committed >= cfg.commit_target {
                        break;
                    }
                }
                // One heap reserve + push per burst instead of per tick:
                // outbox order is generation order, and `push_batch` assigns
                // arrival sequence numbers in that order, so the pop order
                // is identical to pushing tick by tick.
                gq.push_batch(CoreId::new(pick as u16), &mut outbox);
            }
            if head > 0 && mode == Mode::Base {
                th.record(
                    locals[pick],
                    TraceEvent::PhaseEnd {
                        core: CoreId::new(pick as u16),
                        phase: Phase::Run,
                    },
                );
            }

            if !barrier {
                {
                    let _span = ph.enter(ProfSite::ManagerService);
                    Self::service_all(
                        &mut gq,
                        &mut uncore,
                        &mut sink,
                        &mut inboxes,
                        &mut tally,
                        &mut detected,
                        &mut tracker,
                        &mut pending_rollback,
                        &spec,
                        mode,
                        &mut th,
                    );
                }
                if pending_rollback {
                    let _span = ph.enter(ProfSite::CheckpointRestore);
                    let cur_global = locals.iter().copied().min().expect("n >= 1");
                    Self::rollback(
                        snapshot.as_ref().expect("rollback requires a snapshot"),
                        &mut cores,
                        &mut uncore,
                        &mut locals,
                        &mut inboxes,
                        &mut tally,
                        &mut committed,
                        &mut pacer,
                        &mut next_sample,
                        &mut last_sample_tally,
                        &mut gq,
                        &mut spec_stats,
                        cur_global,
                        cp_mode,
                        &mut th,
                    );
                    mode = Mode::Replay;
                    replay_start = locals[0];
                    for i in 0..n {
                        th.record(
                            replay_start,
                            TraceEvent::PhaseBegin {
                                core: CoreId::new(i as u16),
                                phase: Phase::Replay,
                            },
                        );
                    }
                    next_cp_trigger = locals[0].as_u64() + spec.expect("spec enabled").interval;
                    stop_at = None;
                    pending_rollback = false;
                    window_end = locals[0] + 1;
                }
            }
        }

        let global = locals.iter().copied().min().expect("n >= 1");
        if let Some(tr) = &mut tracker {
            tr.close_intervals_up_to(global);
        }

        // Terminal gauge flush: one last sample at the final global time so
        // CSV exports always contain the run's end state even when the run
        // length is not a multiple of the sampling cadence. Guarded so a
        // sample that already landed on this exact cycle is not duplicated.
        if cfg.obs.is_some() && global.as_u64() > last_metrics_cycle {
            sample_metrics(SeqSampleCtx {
                metrics: &mut metrics,
                th: &mut th,
                drift_ids: &drift_ids,
                slack_bound_id,
                violation_rate_id,
                globalq_depth_id,
                globalq_depth_hist,
                trace_dropped_id,
                tracer: &tracer,
                locals: &locals,
                global,
                bound: pacer.current_bound(),
                gq_len: gq.len() as u64,
                detected_total: detected.total(),
                last_metrics_cycle: &mut last_metrics_cycle,
                last_metrics_detected: &mut last_metrics_detected,
            });
        }

        let mut kernel = Counters::new();
        kernel.set("checkpoints", spec_stats.checkpoints);
        kernel.set("rollbacks", spec_stats.rollbacks);
        kernel.set("wasted_cycles", spec_stats.wasted_cycles);
        kernel.set("replay_cycles", spec_stats.replay_cycles);
        kernel.set("violations_detected_total", detected.total());
        kernel.set(
            "violations_detected_bus",
            detected.count(crate::violation::ViolationKind::Bus),
        );
        kernel.set(
            "violations_detected_map",
            detected.count(crate::violation::ViolationKind::Map),
        );
        kernel.set(
            "violations_detected_directory",
            detected.count(crate::violation::ViolationKind::Directory),
        );
        kernel.set(
            "finish_commit_target",
            u64::from(finish_reason == FinishReason::CommitTarget),
        );
        kernel.set("max_clock_spread", max_spread);
        if let Some(tr) = &tracker {
            kernel.set("intervals_total", tr.intervals_total());
            kernel.set("intervals_violating", tr.intervals_violating());
            // Fixed-point (x1000) so the f64 statistics survive the counter
            // interface; the bench harness divides back.
            kernel.set(
                "mean_first_violation_distance_x1000",
                (tr.mean_first_distance() * 1000.0).round() as u64,
            );
        }

        let obs = cfg.obs.map(|_| {
            th.flush();
            let (records, dropped) = tracer.drain();
            ObsData {
                cores: n,
                records,
                dropped,
                metrics,
            }
        });

        let wall = started.elapsed();

        // Publish the final tallies before the terminal heartbeat so the
        // last emitted line reports the finished run exactly.
        if live_on {
            live_stats.global.store(global.as_u64(), Ordering::Relaxed);
            live_stats.committed.store(committed, Ordering::Relaxed);
            live_stats
                .violations
                .store(tally.total(), Ordering::Relaxed);
        }
        if let Some(h) = live_handle {
            h.finish();
        }

        Ok(SimReport {
            global_cycles: global.as_u64(),
            committed,
            violations: tally,
            wall,
            per_core: cores.iter().map(CoreModel::counters).collect(),
            uncore: uncore.counters(),
            kernel,
            bound_trace,
            obs,
            prof: prof.is_enabled().then(|| prof.snapshot(wall, 1)),
        })
    }

    /// Services every event currently in the global queue, in timestamp
    /// order among those queued, applying deliveries and recording
    /// violations.
    #[allow(clippy::too_many_arguments)]
    fn service_all(
        gq: &mut GlobalQueue<C::Event>,
        uncore: &mut U,
        sink: &mut ServiceSink<C::Event>,
        inboxes: &mut [Inbox<C::Event>],
        tally: &mut ViolationTally,
        detected: &mut ViolationTally,
        tracker: &mut Option<IntervalTracker>,
        pending_rollback: &mut bool,
        spec: &Option<crate::speculative::SpeculationConfig>,
        mode: Mode,
        th: &mut TraceHandle,
    ) {
        while let Some((from, ev)) = gq.pop() {
            uncore.service(from, ev, sink);
            for (to, out) in sink.take_deliveries() {
                inboxes[to.index()].deliver(out);
            }
            for v in sink.take_violations() {
                tally.record(v.kind);
                detected.record(v.kind);
                th.record(
                    v.ts,
                    TraceEvent::Violation {
                        kind: v.kind,
                        core: from,
                        ts: v.ts,
                        high_water: v.high_water,
                    },
                );
                if let Some(tr) = tracker.as_mut() {
                    tr.observe_violation(v.ts);
                }
                if mode == Mode::Base {
                    if let Some(sc) = spec {
                        if sc.rollback_on.selects(v.kind) {
                            *pending_rollback = true;
                        }
                    }
                }
            }
            if *pending_rollback {
                // State will be restored wholesale; no point servicing the
                // remaining (doomed) events.
                gq.clear();
                break;
            }
        }
    }

    /// Restores the last checkpoint.
    #[allow(clippy::too_many_arguments)]
    fn rollback(
        snap: &Snapshot<C, U>,
        cores: &mut Vec<C>,
        uncore: &mut U,
        locals: &mut Vec<Cycle>,
        inboxes: &mut Vec<Inbox<C::Event>>,
        tally: &mut ViolationTally,
        committed: &mut u64,
        pacer: &mut Box<dyn Pacer>,
        next_sample: &mut u64,
        last_sample_tally: &mut ViolationTally,
        gq: &mut GlobalQueue<C::Event>,
        spec_stats: &mut SpeculationStats,
        global_at_rollback: Cycle,
        cp_mode: CheckpointMode,
        th: &mut TraceHandle,
    ) {
        spec_stats.rollbacks += 1;
        let wasted = global_at_rollback.saturating_sub(snap.global);
        spec_stats.wasted_cycles += wasted;
        th.record(
            global_at_rollback,
            TraceEvent::Rollback {
                ordinal: spec_stats.rollbacks,
                wasted_cycles: wasted,
            },
        );
        match cp_mode {
            CheckpointMode::Full => {
                *cores = snap.cores.clone();
                *uncore = snap.uncore.clone();
            }
            CheckpointMode::Delta => {
                // Copy back only what diverged since the checkpoint.
                for (i, c) in cores.iter_mut().enumerate() {
                    c.restore_from(&snap.cores[i], snap.core_gens[i]);
                }
                uncore.restore_from(&snap.uncore, snap.uncore_gen);
            }
        }
        *locals = snap.locals.clone();
        *inboxes = snap.inboxes.clone();
        *tally = snap.tally;
        *committed = snap.committed;
        *pacer = snap.pacer.clone_box();
        *next_sample = snap.next_sample;
        *last_sample_tally = snap.last_sample_tally;
        gq.clear();
    }
}

/// Borrowed context for one metrics sample (a struct rather than a long
/// argument list). Factored out of the run loop so the epilogue can flush
/// a terminal sample at the final global time — without it, a run whose
/// length is not a multiple of the sampling cadence would export a CSV
/// missing the final state.
struct SeqSampleCtx<'a> {
    metrics: &'a mut MetricsRegistry,
    th: &'a mut TraceHandle,
    drift_ids: &'a [GaugeId],
    slack_bound_id: GaugeId,
    violation_rate_id: GaugeId,
    globalq_depth_id: GaugeId,
    globalq_depth_hist: HistId,
    trace_dropped_id: GaugeId,
    tracer: &'a Tracer,
    locals: &'a [Cycle],
    global: Cycle,
    bound: Option<u64>,
    gq_len: u64,
    detected_total: u64,
    last_metrics_cycle: &'a mut u64,
    last_metrics_detected: &'a mut u64,
}

/// Emits one metrics sample: per-core drift gauges plus the scalar
/// aggregates, mirroring the threaded engine's sampler.
fn sample_metrics(ctx: SeqSampleCtx<'_>) {
    let SeqSampleCtx {
        metrics,
        th,
        drift_ids,
        slack_bound_id,
        violation_rate_id,
        globalq_depth_id,
        globalq_depth_hist,
        trace_dropped_id,
        tracer,
        locals,
        global,
        bound,
        gq_len,
        detected_total,
        last_metrics_cycle,
        last_metrics_detected,
    } = ctx;
    for (i, &l) in locals.iter().enumerate() {
        let drift = l.saturating_sub(global);
        metrics.gauge_by(drift_ids[i], global, drift as f64);
        th.record(
            global,
            TraceEvent::LocalTimeSample {
                core: CoreId::new(i as u16),
                cycle: l,
            },
        );
    }
    if let Some(b) = bound {
        metrics.gauge_by(slack_bound_id, global, b as f64);
    }
    // Rate over the cycles actually elapsed since the previous sample: a
    // fixed divisor misstates the rate whenever the sampler fires
    // off-cadence, and an elapsed count of zero (e.g. the first crossing
    // after a resume) must not produce a NaN/inf gauge value.
    let elapsed = global.as_u64().saturating_sub(*last_metrics_cycle);
    let live_rate = if elapsed == 0 {
        0.0
    } else {
        (detected_total - *last_metrics_detected) as f64 / elapsed as f64
    };
    *last_metrics_cycle = global.as_u64();
    *last_metrics_detected = detected_total;
    metrics.gauge_by(violation_rate_id, global, live_rate);
    metrics.gauge_by(globalq_depth_id, global, gq_len as f64);
    metrics.histogram_by(globalq_depth_hist).record(gq_len);
    th.record(
        global,
        TraceEvent::QueueDepth {
            q: QueueKind::Global,
            len: gq_len,
        },
    );
    metrics.gauge_by(trace_dropped_id, global, tracer.dropped_so_far() as f64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::Scheme;
    use crate::speculative::{SpeculationConfig, ViolationSelect};
    use crate::violation::{TimestampMonitor, ViolationEvent, ViolationKind};

    /// Toy event: cores ping the uncore, the uncore pongs back.
    #[derive(Debug, Clone, PartialEq, Eq)]
    enum Toy {
        Ping,
        Pong,
    }

    /// Toy core: commits one instruction per cycle and pings the uncore
    /// every `period` cycles.
    #[derive(Debug, Clone)]
    struct ToyCore {
        period: u64,
        committed: u64,
        pongs: u64,
    }

    impl ToyCore {
        fn new(period: u64) -> Self {
            ToyCore {
                period,
                committed: 0,
                pongs: 0,
            }
        }
    }

    impl CoreModel for ToyCore {
        type Event = Toy;

        fn tick(&mut self, ctx: &mut TickCtx<'_, Toy>) -> u32 {
            while let Some(ev) = ctx.pop_event() {
                assert_eq!(ev.payload, Toy::Pong);
                self.pongs += 1;
            }
            if ctx.now().as_u64().is_multiple_of(self.period) {
                ctx.emit(Toy::Ping);
            }
            self.committed += 1;
            1
        }

        fn committed(&self) -> u64 {
            self.committed
        }

        fn counters(&self) -> Counters {
            let mut c = Counters::new();
            c.set("committed", self.committed);
            c.set("pongs", self.pongs);
            c
        }
    }

    /// Toy uncore: a single monitored resource with a 5-cycle response
    /// latency — a minimal bus.
    #[derive(Debug, Clone, Default)]
    struct ToyUncore {
        monitor: TimestampMonitor,
        serviced: u64,
    }

    impl UncoreModel<Toy> for ToyUncore {
        fn service(&mut self, from: CoreId, ev: Timestamped<Toy>, sink: &mut ServiceSink<Toy>) {
            self.serviced += 1;
            if self.monitor.observe(ev.ts) {
                sink.report_violation(ViolationEvent {
                    kind: ViolationKind::Bus,
                    ts: ev.ts,
                    high_water: self.monitor.high_water(),
                });
            }
            sink.deliver(from, Timestamped::new(ev.ts + 5, Toy::Pong));
        }

        fn counters(&self) -> Counters {
            let mut c = Counters::new();
            c.set("serviced", self.serviced);
            c
        }
    }

    crate::impl_checkpointable_by_clone!(ToyCore, ToyUncore);

    fn toy_cores(n: usize) -> Vec<ToyCore> {
        (0..n).map(|i| ToyCore::new(3 + (i as u64 % 4))).collect()
    }

    fn run(scheme: Scheme, seed: u64, target: u64) -> SimReport {
        let mut cfg = EngineConfig::new(scheme, target);
        cfg.seed = seed;
        SequentialEngine::new(toy_cores(4), ToyUncore::default(), cfg)
            .run()
            .expect("run succeeds")
    }

    #[test]
    fn empty_core_set_is_an_error() {
        let cfg = EngineConfig::new(Scheme::CycleByCycle, 10);
        let eng: SequentialEngine<ToyCore, ToyUncore> =
            SequentialEngine::new(Vec::new(), ToyUncore::default(), cfg);
        assert_eq!(eng.run().unwrap_err(), EngineError::NoCores);
    }

    #[test]
    fn cycle_by_cycle_has_zero_violations() {
        let r = run(Scheme::CycleByCycle, 7, 4000);
        assert_eq!(r.violations.total(), 0, "CC is the gold standard");
        assert!(r.committed >= 4000);
        assert!(r.global_cycles > 0);
        // Barrier servicing must actually run: requests are serviced and
        // replies delivered back to the cores.
        assert!(r.uncore.get("serviced") > 0, "manager serviced no events");
        assert!(r.core_total("pongs") > 0, "cores received no replies");
    }

    #[test]
    fn bounded_one_has_zero_violations() {
        // Slack bound 1 cannot reorder events across cycles.
        let r = run(Scheme::BoundedSlack { bound: 1 }, 7, 4000);
        assert_eq!(r.violations.total(), 0);
    }

    #[test]
    fn unbounded_slack_produces_violations() {
        let r = run(Scheme::UnboundedSlack, 7, 8000);
        assert!(
            r.violations.total() > 0,
            "4 drifting cores must reorder on a single monitored bus"
        );
    }

    #[test]
    fn violations_grow_with_slack_bound() {
        let v8 = run(Scheme::BoundedSlack { bound: 8 }, 7, 8000)
            .violations
            .total();
        let v256 = run(Scheme::BoundedSlack { bound: 256 }, 7, 8000)
            .violations
            .total();
        assert!(
            v256 >= v8,
            "larger slack must not reduce violations ({v8} -> {v256})"
        );
        assert!(v256 > 0);
    }

    #[test]
    fn same_seed_is_bit_identical() {
        let a = run(Scheme::BoundedSlack { bound: 16 }, 42, 6000);
        let b = run(Scheme::BoundedSlack { bound: 16 }, 42, 6000);
        assert_eq!(a.global_cycles, b.global_cycles);
        assert_eq!(a.committed, b.committed);
        assert_eq!(a.violations, b.violations);
        assert_eq!(a.per_core, b.per_core);
        assert_eq!(a.uncore, b.uncore);
    }

    #[test]
    fn cc_is_seed_independent() {
        // Under cycle-by-cycle pacing, scheduling order within a cycle must
        // not affect any statistic.
        let a = run(Scheme::CycleByCycle, 1, 4000);
        let b = run(Scheme::CycleByCycle, 999, 4000);
        assert_eq!(a.global_cycles, b.global_cycles);
        assert_eq!(a.committed, b.committed);
        assert_eq!(a.per_core, b.per_core);
        assert_eq!(a.uncore, b.uncore);
    }

    #[test]
    fn quantum_has_zero_monitor_violations() {
        // Batch servicing at boundaries keeps timestamp order intact.
        let r = run(Scheme::Quantum { quantum: 50 }, 7, 6000);
        assert_eq!(r.violations.total(), 0);
        assert!(r.uncore.get("serviced") > 0);
        assert!(r.core_total("pongs") > 0);
    }

    #[test]
    fn cycle_cap_stops_the_run() {
        let mut cfg = EngineConfig::new(Scheme::CycleByCycle, u64::MAX);
        cfg.max_cycles = 500;
        let r = SequentialEngine::new(toy_cores(2), ToyUncore::default(), cfg)
            .run()
            .unwrap();
        assert_eq!(r.global_cycles, 500);
        assert_eq!(r.kernel.get("finish_commit_target"), 0);
    }

    #[test]
    fn checkpoint_only_counts_checkpoints() {
        let mut cfg = EngineConfig::new(Scheme::BoundedSlack { bound: 32 }, 40_000);
        cfg.speculation = Some(SpeculationConfig::checkpoint_only(1000));
        let r = SequentialEngine::new(toy_cores(4), ToyUncore::default(), cfg)
            .run()
            .unwrap();
        let cps = r.kernel.get("checkpoints");
        let expected = r.global_cycles / 1000;
        assert!(
            cps >= expected.saturating_sub(2) && cps <= expected + 2,
            "expected about {expected} checkpoints, took {cps}"
        );
        assert_eq!(r.kernel.get("rollbacks"), 0);
    }

    #[test]
    fn speculative_rollback_eliminates_selected_violations() {
        let mut cfg = EngineConfig::new(Scheme::UnboundedSlack, 20_000);
        cfg.speculation = Some(SpeculationConfig::speculative(500, ViolationSelect::all()));
        cfg.seed = 3;
        let r = SequentialEngine::new(toy_cores(4), ToyUncore::default(), cfg)
            .run()
            .unwrap();
        assert!(
            r.kernel.get("rollbacks") > 0,
            "unbounded slack on a shared bus must trigger rollbacks"
        );
        // Every surviving interval was either clean or replayed in CC mode,
        // so the end-of-run tally contains no *selected* violations beyond
        // those detected in the final (unfinished) interval.
        assert!(r.kernel.get("violations_detected_total") >= r.violations.total());
        assert!(r.kernel.get("replay_cycles") > 0);
        assert!(r.committed >= 20_000);
    }

    #[test]
    fn delta_mode_matches_full_mode_bit_identically() {
        use crate::checkpoint::CheckpointMode;
        for seed in [3u64, 7, 11] {
            let run_mode = |mode: CheckpointMode| {
                let mut cfg = EngineConfig::new(Scheme::UnboundedSlack, 20_000);
                cfg.seed = seed;
                cfg.speculation = Some(
                    SpeculationConfig::speculative(500, ViolationSelect::all()).with_mode(mode),
                );
                SequentialEngine::new(toy_cores(4), ToyUncore::default(), cfg)
                    .run()
                    .unwrap()
            };
            let full = run_mode(CheckpointMode::Full);
            let delta = run_mode(CheckpointMode::Delta);
            assert!(
                full.kernel.get("rollbacks") > 0,
                "seed {seed}: no rollbacks"
            );
            assert_eq!(full.global_cycles, delta.global_cycles, "seed {seed}");
            assert_eq!(full.committed, delta.committed, "seed {seed}");
            assert_eq!(full.violations, delta.violations, "seed {seed}");
            assert_eq!(full.per_core, delta.per_core, "seed {seed}");
            assert_eq!(full.uncore, delta.uncore, "seed {seed}");
            assert_eq!(full.kernel, delta.kernel, "seed {seed}");
        }
    }

    #[test]
    fn interval_tracker_statistics_are_reported() {
        let mut cfg = EngineConfig::new(Scheme::UnboundedSlack, 30_000);
        cfg.speculation = Some(SpeculationConfig::checkpoint_only(1000));
        cfg.seed = 5;
        let r = SequentialEngine::new(toy_cores(4), ToyUncore::default(), cfg)
            .run()
            .unwrap();
        assert!(r.kernel.get("intervals_total") > 0);
        assert!(r.kernel.get("intervals_violating") <= r.kernel.get("intervals_total"));
    }

    #[test]
    fn bound_trace_records_adaptive_bounds() {
        use crate::scheme::AdaptiveConfig;
        let mut cfg = EngineConfig::new(
            Scheme::Adaptive(AdaptiveConfig {
                sample_period: 256,
                ..AdaptiveConfig::default()
            }),
            20_000,
        );
        cfg.seed = 9;
        let r = SequentialEngine::new(toy_cores(4), ToyUncore::default(), cfg)
            .run()
            .unwrap();
        assert!(!r.bound_trace.is_empty());
        assert!(r.bound_trace.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn per_core_counters_sum_to_committed() {
        let r = run(Scheme::BoundedSlack { bound: 4 }, 11, 5000);
        assert_eq!(r.core_total("committed"), r.committed);
    }
}
