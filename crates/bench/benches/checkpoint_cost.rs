//! Criterion bench: checkpointing overhead vs interval length (the
//! mechanism behind Table 2's 5K-100K columns).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use slacksim::scheme::Scheme;
use slacksim::{Benchmark, EngineKind, Simulation, SpeculationConfig};

fn run(interval: Option<u64>) {
    let mut sim = Simulation::new(Benchmark::Lu);
    sim.cores(8)
        .commit_target(40_000)
        .seed(1)
        .scheme(Scheme::BoundedSlack { bound: 16 })
        .engine(EngineKind::Sequential);
    if let Some(i) = interval {
        sim.speculation(SpeculationConfig::checkpoint_only(i));
    }
    let report = sim.run().expect("bench run");
    assert!(report.committed >= 40_000);
}

fn checkpoint_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("checkpoint_interval");
    group.sample_size(10);
    group.bench_function("none", |b| b.iter(|| run(None)));
    for interval in [1_000u64, 5_000, 20_000] {
        group.bench_with_input(
            BenchmarkId::from_parameter(interval),
            &interval,
            |b, &i| b.iter(|| run(Some(i))),
        );
    }
    group.finish();
}

criterion_group!(benches, checkpoint_cost);
criterion_main!(benches);
