//! Incremental (delta) checkpointing.
//!
//! The paper's `fork()`-based checkpoints got incremental capture for free
//! from OS copy-on-write: untouched pages cost nothing. Our structured
//! in-memory snapshots instead deep-clone every model at every checkpoint
//! interval. [`Checkpointable`] restores the missing asymptotics in a
//! deterministic, allocator-visible way: models track which of their parts
//! changed since a *generation* (a monotonic per-model mutation counter)
//! and capture only those parts.
//!
//! ## The generation protocol
//!
//! A model keeps one monotonically increasing generation counter, bumped on
//! every mutating operation, and stamps the mutated *unit* (a cache set, a
//! map entry, a whole scalar block — granularity is the implementor's
//! choice) with the new generation. Then, with `g = model.generation()`
//! sampled at checkpoint `k`:
//!
//! * `capture_delta(g_prev)` returns every unit stamped *after* `g_prev`,
//!   i.e. everything that may differ from checkpoint `k-1`'s state;
//! * `apply_delta(delta)` consumes the delta to patch a base copy holding
//!   checkpoint `k-1` forward to checkpoint `k` — consuming lets bulk
//!   payloads (whole sets, whole maps) *move* into the base instead of
//!   being copied a second time;
//! * `restore_from(&base, g)` rolls the *live* model back to checkpoint
//!   `k` by overwriting every unit stamped after `g` with `base`'s value —
//!   the reverse application of whatever has happened since the
//!   checkpoint, without cloning the parts that never moved.
//!
//! Generations are never rewound: after a rollback the live model keeps
//! counting from where it was, so units touched during the discarded
//! window stay stamped above the checkpoint generation. A later capture
//! may therefore include a unit whose value never effectively changed —
//! that is a value-equal patch, harmless by construction. What must never
//! happen is the converse (a changed unit *not* included), which the
//! monotone stamps rule out.
//!
//! Tracking metadata (generation counters and unit stamps) is pure
//! bookkeeping: it must never influence model behaviour, and equality
//! comparisons between model states deliberately ignore it. That is what
//! keeps full-clone and delta checkpointing bit-identical in simulation
//! results, which the conformance suite asserts (DESIGN §11–12).

/// How the engines capture and restore speculative-slack checkpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CheckpointMode {
    /// Deep-clone the full model state at every checkpoint (the original
    /// behaviour; simple, allocation-heavy).
    #[default]
    Full,
    /// Capture only state mutated since the previous checkpoint and roll
    /// back by reverse-applying against a retained base copy.
    Delta,
}

impl CheckpointMode {
    /// Parses a CLI-facing mode name.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "full" => Some(CheckpointMode::Full),
            "delta" => Some(CheckpointMode::Delta),
            _ => None,
        }
    }

    /// The CLI-facing name of the mode.
    pub fn name(self) -> &'static str {
        match self {
            CheckpointMode::Full => "full",
            CheckpointMode::Delta => "delta",
        }
    }
}

/// A model whose state can be checkpointed incrementally.
///
/// Implementors keep a monotonic generation counter bumped on every
/// mutation and per-unit dirty stamps; see the [module docs](self) for the
/// full protocol and its invariants. `Clone` remains a supertrait because
/// full-clone checkpointing stays available as a mode and as the first
/// (baseline) capture in delta mode.
///
/// Models without internal dirty tracking can opt into a trivially correct
/// whole-state implementation with
/// [`impl_checkpointable_by_clone!`](crate::impl_checkpointable_by_clone).
pub trait Checkpointable: Clone {
    /// The incremental state carrier produced by [`capture_delta`]
    /// (`Self::capture_delta`) and consumed by [`apply_delta`]
    /// (`Self::apply_delta`).
    type Delta: Send + 'static;

    /// Current generation: a monotonic counter of mutations applied to
    /// this model. `capture_delta(g)` with `g` sampled *now* returns an
    /// empty (or value-equal) delta.
    fn generation(&self) -> u64;

    /// Captures every unit of state mutated after `since_gen`, together
    /// with the capture-time generation. Takes `&mut self` so
    /// implementations may prune dirty bookkeeping that `since_gen`
    /// proves no longer reachable; the *model state* must not change.
    fn capture_delta(&mut self, since_gen: u64) -> Self::Delta;

    /// Patches this model (holding the state the delta was captured
    /// against) forward to the delta's capture point. Consumes the delta
    /// so implementations can move owned payloads into place rather than
    /// copy them again — what keeps delta mode's apply cost near zero
    /// even when most units are dirty.
    fn apply_delta(&mut self, delta: Self::Delta);

    /// Rolls this *live* model back to the state held by `base`, where
    /// `since_gen` is this model's generation sampled when `base` was
    /// current: every unit stamped after `since_gen` is overwritten with
    /// `base`'s value; clean units are left untouched. Generations are
    /// not rewound.
    fn restore_from(&mut self, base: &Self, since_gen: u64);
}

/// Implements [`Checkpointable`] for a `Clone` type by whole-state copy:
/// the delta *is* a full clone and every restore is a full overwrite.
///
/// This is the correct fallback for small models (test doubles, toy
/// examples) where dirty tracking would cost more than it saves, and it
/// keeps the trait bound satisfiable without forcing every model to carry
/// tracking machinery.
///
/// # Examples
///
/// ```
/// use slacksim_core::checkpoint::Checkpointable;
///
/// #[derive(Clone, PartialEq, Debug)]
/// struct Counter(u64);
/// slacksim_core::impl_checkpointable_by_clone!(Counter);
///
/// let mut live = Counter(1);
/// let base = live.clone();
/// let gen = live.generation();
/// live.0 = 99;
/// live.restore_from(&base, gen);
/// assert_eq!(live, Counter(1));
/// ```
#[macro_export]
macro_rules! impl_checkpointable_by_clone {
    ($($ty:ty),+ $(,)?) => {
        $(
            impl $crate::checkpoint::Checkpointable for $ty {
                type Delta = $ty;

                fn generation(&self) -> u64 {
                    0
                }

                fn capture_delta(&mut self, _since_gen: u64) -> Self::Delta {
                    self.clone()
                }

                fn apply_delta(&mut self, delta: Self::Delta) {
                    *self = delta;
                }

                fn restore_from(&mut self, base: &Self, _since_gen: u64) {
                    *self = base.clone();
                }
            }
        )+
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, PartialEq, Eq, Debug)]
    struct Blob(Vec<u64>);
    impl_checkpointable_by_clone!(Blob);

    #[test]
    fn mode_parse_roundtrip() {
        for mode in [CheckpointMode::Full, CheckpointMode::Delta] {
            assert_eq!(CheckpointMode::parse(mode.name()), Some(mode));
        }
        assert_eq!(CheckpointMode::parse("incremental"), None);
        assert_eq!(CheckpointMode::default(), CheckpointMode::Full);
    }

    #[test]
    fn clone_fallback_roundtrips() {
        let mut live = Blob(vec![1, 2, 3]);
        let gen = live.generation();
        let mut base = live.clone();

        live.0.push(4);
        let delta = live.capture_delta(gen);
        base.apply_delta(delta);
        assert_eq!(base, live, "apply reproduces the live state");

        live.0.clear();
        live.restore_from(&base, gen);
        assert_eq!(live, Blob(vec![1, 2, 3, 4]), "restore rewinds to base");
    }
}
