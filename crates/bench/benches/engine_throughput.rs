//! Bench: simulated-cycles-per-second of the engines under the main slack
//! schemes (the raw speed behind Figure 4's Y axis).
//!
//! A plain `main()` timing harness over `std::time::Instant` — no external
//! bench framework, so it runs in fully offline builds. Invoke with
//! `cargo bench --bench engine_throughput`.
//!
//! Besides the human-readable table on stdout, the harness writes
//! machine-readable results to `BENCH_threaded.json` at the workspace root
//! (override with `SLACKSIM_BENCH_OUT`) so the repo's perf trajectory can
//! be tracked across PRs, plus the batched (quantum-compiled) engine's
//! rows to `BENCH_batched.json` (override with
//! `SLACKSIM_BENCH_OUT_BATCHED`) together with a
//! `speedup_vs_sequential_quantum` summary — the headline number of the
//! batched engine. Each result row records the engine, scheme, core
//! count, slack bound, wall time and events/sec. The files are re-parsed
//! with the in-tree `obs::json` parser before the process exits, so a
//! malformed emitter fails the bench rather than poisoning the
//! trajectory.
//!
//! Environment knobs:
//!
//! * `SLACKSIM_BENCH_SMOKE=1` — tiny commit target and 2 iterations, for
//!   CI smoke runs;
//! * `SLACKSIM_BENCH_BASELINE=path` — embed a previous `BENCH_threaded.json`
//!   under a `"baseline"` key and report per-row speedups against it;
//! * `SLACKSIM_BENCH_BASELINE_BATCHED=path` — likewise for the batched
//!   results file;
//! * `SLACKSIM_BENCH_OUT_DIRECTORY` / `SLACKSIM_BENCH_BASELINE_DIRECTORY`
//!   — likewise for the directory-uncore rows (64-core FFT through the
//!   sharded MESI banks), written to `BENCH_directory.json` by default;
//! * `SLACKSIM_BENCH_TOLERANCE=R` — with a baseline, fail (exit non-zero)
//!   if any row's median throughput drops below `R×` the baseline row's,
//!   so baseline drift fails CI loudly instead of passing unnoticed (the
//!   gate applies to each results file against its own baseline);
//! * `SLACKSIM_BENCH_PROFILE=1` — run each configuration with the
//!   host-time profiler attached (DESIGN §14) and print the top
//!   per-site self-time shares under each row, to see where a slow
//!   row's wall-clock actually goes. Timing rows then include profiler
//!   overhead, so don't combine with a tolerance gate.

use std::fmt::Write as _;
use std::time::Instant;

use slacksim::scheme::Scheme;
use slacksim::{
    Benchmark, CheckpointMode, EngineKind, ProfData, Simulation, SpeculationConfig, UncoreKind,
};
use slacksim_core::obs::json::Json;

const CORES: usize = 8;

/// Core count of the directory-uncore rows: far past the snooping bus's
/// 16-core cap, where the sharded banks earn their keep.
const DIR_CORES: usize = 64;

struct RunStats {
    wall_ms_median: f64,
    wall_ms_mean: f64,
    committed: u64,
    global_cycles: u64,
    events: u64,
}

struct ResultRow {
    engine: &'static str,
    scheme_name: &'static str,
    uncore: UncoreKind,
    cores: usize,
    slack_bound: Option<u64>,
    stats: RunStats,
}

impl ResultRow {
    /// Uncore events serviced per second of host wall time (median run).
    fn events_per_sec(&self) -> f64 {
        self.stats.events as f64 / (self.stats.wall_ms_median / 1e3)
    }

    /// Committed target instructions per second of host wall time.
    fn commits_per_sec(&self) -> f64 {
        self.stats.committed as f64 / (self.stats.wall_ms_median / 1e3)
    }

    fn key(&self) -> String {
        format!("{}/{}", self.engine, self.scheme_name)
    }
}

fn profiling() -> bool {
    std::env::var("SLACKSIM_BENCH_PROFILE").is_ok_and(|v| v == "1")
}

#[allow(clippy::too_many_arguments)]
fn run_once(
    engine: EngineKind,
    scheme: Scheme,
    uncore: UncoreKind,
    cores: usize,
    commit_target: u64,
    spec: Option<SpeculationConfig>,
    shards: usize,
) -> (std::time::Duration, u64, u64, u64, Option<ProfData>) {
    let t = Instant::now();
    let mut sim = Simulation::new(Benchmark::Fft);
    sim.uncore(uncore)
        .cores(cores)
        .commit_target(commit_target)
        .seed(1)
        .scheme(scheme)
        .engine(engine)
        .shards(shards)
        .profile(profiling());
    if let Some(spec) = spec {
        sim.speculation(spec);
    }
    let report = sim.run().expect("bench run");
    let wall = t.elapsed();
    assert!(report.committed >= commit_target);
    (
        wall,
        report.committed,
        report.global_cycles,
        // Interconnect transactions: whichever uncore is inactive
        // contributes zero, so one events metric covers both.
        report.uncore.get("bus_transactions") + report.uncore.get("dir_transactions"),
        report.prof,
    )
}

#[allow(clippy::too_many_arguments)]
fn bench(
    engine: EngineKind,
    engine_name: &'static str,
    scheme: Scheme,
    scheme_name: &'static str,
    uncore: UncoreKind,
    cores: usize,
    slack_bound: Option<u64>,
    commit_target: u64,
    iters: u32,
    spec: Option<SpeculationConfig>,
    shards: usize,
) -> ResultRow {
    let _ = run_once(
        engine,
        scheme.clone(),
        uncore,
        cores,
        commit_target,
        spec,
        shards,
    ); // warm-up
    let mut times = Vec::with_capacity(iters as usize);
    let mut committed = 0;
    let mut global_cycles = 0;
    let mut events = 0;
    let mut prof = None;
    for _ in 0..iters {
        let (wall, c, g, e, p) = run_once(
            engine,
            scheme.clone(),
            uncore,
            cores,
            commit_target,
            spec,
            shards,
        );
        times.push(wall);
        committed = c;
        global_cycles = g;
        events = e;
        prof = p;
    }
    times.sort();
    let median = times[times.len() / 2];
    let total: std::time::Duration = times.iter().sum();
    let row = ResultRow {
        engine: engine_name,
        scheme_name,
        uncore,
        cores,
        slack_bound,
        stats: RunStats {
            wall_ms_median: median.as_secs_f64() * 1e3,
            wall_ms_mean: (total / iters).as_secs_f64() * 1e3,
            committed,
            global_cycles,
            events,
        },
    };
    println!(
        "{:<28} median {:>9.2} ms  mean {:>9.2} ms  {:>10.0} events/s  ({iters} iters)",
        row.key(),
        row.stats.wall_ms_median,
        row.stats.wall_ms_mean,
        row.events_per_sec(),
    );
    if let Some(prof) = prof {
        // Top self-time sites of the last iteration, so a slow row shows
        // where its host time went (SLACKSIM_BENCH_PROFILE=1).
        let total = prof.total_self_ns().max(1);
        let mut sites: Vec<_> = prof.sites.iter().collect();
        sites.sort_by_key(|s| std::cmp::Reverse(s.self_ns));
        let shares: Vec<String> = sites
            .iter()
            .take(3)
            .map(|s| {
                format!(
                    "{} {:.1}%",
                    s.site.name(),
                    s.self_ns as f64 / total as f64 * 100.0
                )
            })
            .collect();
        println!(
            "{:<28} prof: {} (coverage {:.1}%)",
            "",
            shares.join(", "),
            prof.coverage() * 100.0
        );
    }
    row
}

/// Formats an `f64` for JSON: finite, plain decimal notation.
fn jnum(v: f64) -> String {
    debug_assert!(v.is_finite());
    format!("{v:.3}")
}

/// Per-row median-throughput ratio against a previous `BENCH_threaded.json`
/// document, keyed `engine/scheme`. Rows the baseline does not know are
/// skipped (new configurations have no trajectory yet).
fn speedups_vs(rows: &[ResultRow], baseline_raw: &str) -> Vec<(String, f64)> {
    let mut speedups = Vec::new();
    if let Ok(doc) = Json::parse(baseline_raw) {
        if let Some(base_rows) = doc.get("results").and_then(Json::as_array) {
            for r in rows {
                let base = base_rows.iter().find(|b| {
                    b.get("engine").and_then(Json::as_str) == Some(r.engine)
                        && b.get("scheme").and_then(Json::as_str) == Some(r.scheme_name)
                });
                if let Some(eps) = base
                    .and_then(|b| b.get("events_per_sec"))
                    .and_then(Json::as_f64)
                {
                    if eps > 0.0 {
                        speedups.push((r.key(), r.events_per_sec() / eps));
                    }
                }
            }
        }
    }
    speedups
}

fn emit_json(
    rows: &[ResultRow],
    header_cores: usize,
    commit_target: u64,
    iters: u32,
    baseline_raw: Option<&str>,
    extra_keys: &[(&str, String)],
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench\": \"engine_throughput\",");
    let _ = writeln!(out, "  \"workload\": \"FFT\",");
    let _ = writeln!(out, "  \"cores\": {header_cores},");
    let _ = writeln!(out, "  \"commit_target\": {commit_target},");
    let _ = writeln!(out, "  \"iters\": {iters},");
    out.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let bound = match r.slack_bound {
            Some(b) => b.to_string(),
            None => "null".to_string(),
        };
        let _ = write!(
            out,
            "    {{\"engine\": \"{}\", \"scheme\": \"{}\", \"uncore\": \"{}\", \"cores\": {}, \
             \"slack_bound\": {bound}, \"wall_ms_median\": {}, \"wall_ms_mean\": {}, \
             \"events\": {}, \"events_per_sec\": {}, \"commits_per_sec\": {}, \
             \"committed\": {}, \"global_cycles\": {}}}",
            r.engine,
            r.scheme_name,
            r.uncore,
            r.cores,
            jnum(r.stats.wall_ms_median),
            jnum(r.stats.wall_ms_mean),
            r.stats.events,
            jnum(r.events_per_sec()),
            jnum(r.commits_per_sec()),
            r.stats.committed,
            r.stats.global_cycles,
        );
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]");
    // The checkpoint-cost row (DESIGN §12): full-vs-delta capture at the
    // 5k interval, summarized from the cp5k-* result rows.
    let cp = |name: &str| rows.iter().find(|r| r.scheme_name == name);
    if let (Some(full), Some(delta)) = (cp("cp5k-full"), cp("cp5k-delta")) {
        let _ = write!(
            out,
            ",\n  \"checkpoint_cost\": {{\"engine\": \"{}\", \"scheme\": \"bounded-16\", \
             \"interval\": 5000, \"commit_target\": {}, \"full_wall_ms_median\": {}, \
             \"delta_wall_ms_median\": {}, \"delta_speedup\": {}}}",
            full.engine,
            full.stats.committed,
            jnum(full.stats.wall_ms_median),
            jnum(delta.stats.wall_ms_median),
            jnum(full.stats.wall_ms_median / delta.stats.wall_ms_median),
        );
    }
    for (k, v) in extra_keys {
        let _ = write!(out, ",\n  \"{k}\": {v}");
    }
    if let Some(raw) = baseline_raw {
        // Embed the previous run verbatim (it was validated when written)
        // and report speedups keyed by engine/scheme.
        out.push_str(",\n  \"baseline\": ");
        out.push_str(raw.trim_end());
        let speedups = speedups_vs(rows, raw);
        if !speedups.is_empty() {
            out.push_str(",\n  \"speedup_vs_baseline\": {\n");
            for (i, (k, s)) in speedups.iter().enumerate() {
                let _ = write!(out, "    \"{k}\": {}", jnum(*s));
                out.push_str(if i + 1 < speedups.len() { ",\n" } else { "\n" });
            }
            out.push_str("  }");
        }
    }
    out.push_str("\n}\n");
    out
}

fn main() {
    let smoke = std::env::var("SLACKSIM_BENCH_SMOKE").is_ok_and(|v| v == "1");
    let (commit_target, iters) = if smoke { (6_000, 2) } else { (40_000, 5) };
    println!(
        "engine_throughput (FFT, {CORES} cores, {commit_target} commits, {iters} iters{})",
        if smoke { ", smoke" } else { "" }
    );

    let mut rows = Vec::new();
    for (name, bound, scheme) in [
        ("cycle-by-cycle", Some(0), Scheme::CycleByCycle),
        ("bounded-16", Some(16), Scheme::BoundedSlack { bound: 16 }),
        ("unbounded", None, Scheme::UnboundedSlack),
        ("quantum-50", Some(50), Scheme::Quantum { quantum: 50 }),
    ] {
        rows.push(bench(
            EngineKind::Sequential,
            "sequential",
            scheme,
            name,
            UncoreKind::Bus,
            CORES,
            bound,
            commit_target,
            iters,
            None,
            1,
        ));
    }
    for (name, bound, scheme) in [
        ("cycle-by-cycle", Some(0), Scheme::CycleByCycle),
        ("bounded-16", Some(16), Scheme::BoundedSlack { bound: 16 }),
        ("bounded-64", Some(64), Scheme::BoundedSlack { bound: 64 }),
        ("unbounded", None, Scheme::UnboundedSlack),
    ] {
        rows.push(bench(
            EngineKind::Threaded,
            "threaded",
            scheme,
            name,
            UncoreKind::Bus,
            CORES,
            bound,
            commit_target,
            iters,
            None,
            1,
        ));
    }

    // Sharded manager-tree row (DESIGN §18): the threaded engine with
    // `--shards 4` on the same 8-core bounded-64 workload, keyed as its
    // own engine name so the tolerance gate tracks the sharded
    // trajectory separately from the single-manager rows.
    rows.push(bench(
        EngineKind::Threaded,
        "threaded-sh4",
        Scheme::BoundedSlack { bound: 64 },
        "bounded-64",
        UncoreKind::Bus,
        CORES,
        Some(64),
        commit_target,
        iters,
        None,
        4,
    ));

    // Checkpoint-cost rows (DESIGN §12): bounded-16 with a checkpoint
    // every 5k global cycles, full-clone vs delta capture, on the
    // deterministic engine at a 10× commit target so the run crosses
    // enough interval boundaries for the capture cost to register.
    let cp_target = commit_target * 10;
    for (name, mode) in [
        ("cp5k-full", CheckpointMode::Full),
        ("cp5k-delta", CheckpointMode::Delta),
    ] {
        rows.push(bench(
            EngineKind::Sequential,
            "sequential",
            Scheme::BoundedSlack { bound: 16 },
            name,
            UncoreKind::Bus,
            CORES,
            Some(16),
            cp_target,
            iters,
            Some(SpeculationConfig::checkpoint_only(5_000).with_mode(mode)),
            1,
        ));
    }

    // Batched engine rows (quantum-compiled BSP stepping, DESIGN §15).
    // The batched engine only accepts barrier schemes, so its rows are
    // the quantum family; they go to a separate BENCH_batched.json so the
    // batched trajectory gates independently of the threaded one.
    let mut batched_rows = Vec::new();
    for (name, bound, scheme) in [
        ("quantum-50", Some(50), Scheme::Quantum { quantum: 50 }),
        ("quantum-500", Some(500), Scheme::Quantum { quantum: 500 }),
    ] {
        batched_rows.push(bench(
            EngineKind::Batched,
            "batched",
            scheme,
            name,
            UncoreKind::Bus,
            CORES,
            bound,
            commit_target,
            iters,
            None,
            1,
        ));
    }

    // Directory-uncore rows (sharded MESI banks, DESIGN §17): 64-core
    // FFT, four times past the bus cap, one row per engine at its
    // exactness scheme. They go to BENCH_directory.json so the
    // directory-scale trajectory gates independently.
    let mut directory_rows = Vec::new();
    for (engine, engine_name, name, bound, scheme, shards) in [
        (
            EngineKind::Sequential,
            "sequential",
            "cycle-by-cycle",
            Some(0),
            Scheme::CycleByCycle,
            1,
        ),
        (
            EngineKind::Sequential,
            "sequential",
            "bounded-16",
            Some(16),
            Scheme::BoundedSlack { bound: 16 },
            1,
        ),
        (
            EngineKind::Threaded,
            "threaded",
            "bounded-16",
            Some(16),
            Scheme::BoundedSlack { bound: 16 },
            1,
        ),
        // The manager tree at its design point: 64 cores split over 4
        // shard managers (DESIGN §18), same scheme as the
        // single-manager threaded row above so the speedup reads
        // directly off the table.
        (
            EngineKind::Threaded,
            "threaded-sh4",
            "bounded-16",
            Some(16),
            Scheme::BoundedSlack { bound: 16 },
            4,
        ),
        (
            EngineKind::Batched,
            "batched",
            "quantum-50",
            Some(50),
            Scheme::Quantum { quantum: 50 },
            1,
        ),
    ] {
        directory_rows.push(bench(
            engine,
            engine_name,
            scheme,
            name,
            UncoreKind::Directory,
            DIR_CORES,
            bound,
            commit_target,
            iters,
            None,
            shards,
        ));
    }

    let baseline_raw = load_baseline("SLACKSIM_BENCH_BASELINE");
    let json = emit_json(
        &rows,
        CORES,
        commit_target,
        iters,
        baseline_raw.as_deref(),
        &[],
    );
    // Fail loudly if the hand-rolled emitter ever produces malformed JSON.
    Json::parse(&json).expect("emitted BENCH_threaded.json must be well-formed");

    // The batched engine's headline number: median commit throughput of
    // the quantum-50 row over the sequential engine's quantum-50 row —
    // the speedup the quantum-compiled loop buys on identical work.
    let seq_q50 = rows
        .iter()
        .find(|r| r.engine == "sequential" && r.scheme_name == "quantum-50")
        .expect("sequential quantum-50 row");
    let bat_q50 = batched_rows
        .iter()
        .find(|r| r.scheme_name == "quantum-50")
        .expect("batched quantum-50 row");
    let extra_keys = [
        (
            "sequential_quantum_commits_per_sec",
            jnum(seq_q50.commits_per_sec()),
        ),
        (
            "speedup_vs_sequential_quantum",
            jnum(bat_q50.commits_per_sec() / seq_q50.commits_per_sec()),
        ),
    ];
    let batched_baseline_raw = load_baseline("SLACKSIM_BENCH_BASELINE_BATCHED");
    let batched_json = emit_json(
        &batched_rows,
        CORES,
        commit_target,
        iters,
        batched_baseline_raw.as_deref(),
        &extra_keys,
    );
    Json::parse(&batched_json).expect("emitted BENCH_batched.json must be well-formed");
    println!(
        "batched/quantum-50: {:.2}x sequential/quantum-50 commit throughput",
        bat_q50.commits_per_sec() / seq_q50.commits_per_sec()
    );

    // The directory trajectory's headline number: 64-core FFT commit
    // throughput on the deterministic engine.
    let dir_cc = directory_rows
        .iter()
        .find(|r| r.engine == "sequential" && r.scheme_name == "cycle-by-cycle")
        .expect("directory cycle-by-cycle row");
    // The manager tree's headline number: bounded-slack commit
    // throughput of the 4-shard tree over the single-manager threaded
    // engine on the same 64-core directory FFT.
    let dir_threaded = directory_rows
        .iter()
        .find(|r| r.engine == "threaded" && r.scheme_name == "bounded-16")
        .expect("directory threaded bounded-16 row");
    let dir_sharded = directory_rows
        .iter()
        .find(|r| r.engine == "threaded-sh4" && r.scheme_name == "bounded-16")
        .expect("directory threaded-sh4 bounded-16 row");
    let directory_extra_keys = [
        (
            "directory_cc_commits_per_sec",
            jnum(dir_cc.commits_per_sec()),
        ),
        (
            "sharded_speedup_vs_single_manager",
            jnum(dir_sharded.commits_per_sec() / dir_threaded.commits_per_sec()),
        ),
    ];
    let directory_baseline_raw = load_baseline("SLACKSIM_BENCH_BASELINE_DIRECTORY");
    let directory_json = emit_json(
        &directory_rows,
        DIR_CORES,
        commit_target,
        iters,
        directory_baseline_raw.as_deref(),
        &directory_extra_keys,
    );
    Json::parse(&directory_json).expect("emitted BENCH_directory.json must be well-formed");
    println!(
        "directory/cycle-by-cycle at {DIR_CORES} cores: {:.0} commits/s",
        dir_cc.commits_per_sec()
    );
    println!(
        "threaded-sh4/bounded-16 at {DIR_CORES} cores: {:.2}x single-manager commit throughput",
        dir_sharded.commits_per_sec() / dir_threaded.commits_per_sec()
    );

    // Baseline drift gates (ci.sh bench smoke): every row a baseline
    // knows must keep at least `SLACKSIM_BENCH_TOLERANCE`× its median
    // throughput; anything slower — or a baseline sharing no rows at all —
    // fails the bench rather than letting drift pass unnoticed. Each
    // results file gates against its own baseline.
    if let Some(tol) = std::env::var("SLACKSIM_BENCH_TOLERANCE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
    {
        tolerance_gate(
            &rows,
            baseline_raw.as_deref(),
            tol,
            "SLACKSIM_BENCH_BASELINE",
        );
        tolerance_gate(
            &batched_rows,
            batched_baseline_raw.as_deref(),
            tol,
            "SLACKSIM_BENCH_BASELINE_BATCHED",
        );
        tolerance_gate(
            &directory_rows,
            directory_baseline_raw.as_deref(),
            tol,
            "SLACKSIM_BENCH_BASELINE_DIRECTORY",
        );
    }

    let out_path = std::env::var("SLACKSIM_BENCH_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_threaded.json").to_string()
    });
    std::fs::write(&out_path, &json).expect("write BENCH_threaded.json");
    println!("wrote {out_path}");

    let batched_out_path = std::env::var("SLACKSIM_BENCH_OUT_BATCHED").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_batched.json").to_string()
    });
    std::fs::write(&batched_out_path, &batched_json).expect("write BENCH_batched.json");
    println!("wrote {batched_out_path}");

    let directory_out_path = std::env::var("SLACKSIM_BENCH_OUT_DIRECTORY").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_directory.json").to_string()
    });
    std::fs::write(&directory_out_path, &directory_json).expect("write BENCH_directory.json");
    println!("wrote {directory_out_path}");
}

/// Reads and validates a baseline document named by the environment
/// variable `var`. A malformed baseline would otherwise surface as a
/// confusing failure of the emitter's own self-check.
fn load_baseline(var: &str) -> Option<String> {
    std::env::var(var)
        .ok()
        .and_then(|p| std::fs::read_to_string(p).ok())
        .filter(|raw| match Json::parse(raw) {
            Ok(_) => true,
            Err(e) => {
                eprintln!("warning: ignoring malformed {var}: {e}");
                false
            }
        })
}

/// Exits non-zero unless every row the baseline knows keeps at least
/// `tol`× its median throughput.
fn tolerance_gate(rows: &[ResultRow], baseline_raw: Option<&str>, tol: f64, var: &str) {
    let Some(raw) = baseline_raw else {
        eprintln!("error: SLACKSIM_BENCH_TOLERANCE set without a readable {var}");
        std::process::exit(1);
    };
    let speedups = speedups_vs(rows, raw);
    if speedups.is_empty() {
        eprintln!("error: {var} shares no engine/scheme rows with this run");
        std::process::exit(1);
    }
    for r in rows {
        if !speedups.iter().any(|(k, _)| *k == r.key()) {
            eprintln!("bench check: {} has no baseline row yet, skipped", r.key());
        }
    }
    let slow: Vec<&(String, f64)> = speedups.iter().filter(|(_, s)| *s < tol).collect();
    for (k, s) in &slow {
        eprintln!(
            "bench check: {k} at {s:.3}x of baseline median throughput, below tolerance {tol}x"
        );
    }
    if !slow.is_empty() {
        std::process::exit(1);
    }
    println!(
        "bench check: {} rows within {tol}x-of-baseline tolerance",
        speedups.len()
    );
}
