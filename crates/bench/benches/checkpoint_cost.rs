//! Bench: checkpointing overhead vs interval length and capture mode (the
//! mechanism behind Table 2's 5K-100K columns, full clones vs incremental
//! deltas per DESIGN §12).
//!
//! A plain `main()` timing harness over `std::time::Instant` — no external
//! bench framework, so it runs in fully offline builds. Invoke with
//! `cargo bench --bench checkpoint_cost`.
//!
//! Beyond the end-to-end medians, each checkpointed configuration derives
//! the per-checkpoint overhead — `(median − no-checkpoint median) /
//! checkpoints-taken` — which is where the full-vs-delta difference shows
//! even when checkpoints are a small fraction of total run time.

use std::time::Instant;

use slacksim::scheme::Scheme;
use slacksim::{Benchmark, CheckpointMode, EngineKind, Simulation, SpeculationConfig};

const ITERS: u32 = 5;
/// Large enough that even the 100k interval takes several checkpoints
/// (~285k simulated cycles for LU at this target) and the cold-start
/// transient — the first few checkpoints see most of the L2 and map
/// dirty — stops dominating the per-checkpoint means.
const COMMIT_TARGET: u64 = 5_000_000;

/// Paper Table 2 checkpoint intervals, in simulated global cycles.
const INTERVALS: [u64; 4] = [5_000, 10_000, 50_000, 100_000];

/// Runs one configuration and returns the number of checkpoints taken.
fn run(interval: Option<u64>, mode: CheckpointMode) -> u64 {
    let mut sim = Simulation::new(Benchmark::Lu);
    sim.cores(8)
        .commit_target(COMMIT_TARGET)
        .seed(1)
        .scheme(Scheme::BoundedSlack { bound: 16 })
        .engine(EngineKind::Sequential);
    if let Some(i) = interval {
        sim.speculation(SpeculationConfig::checkpoint_only(i).with_mode(mode));
    }
    let report = sim.run().expect("bench run");
    assert!(report.committed >= COMMIT_TARGET);
    report.kernel.get("checkpoints")
}

/// Times one configuration; returns the median wall seconds and the
/// checkpoint count of the last run.
fn bench(label: &str, interval: Option<u64>, mode: CheckpointMode) -> (f64, u64) {
    run(interval, mode); // warm-up
    let mut times = Vec::with_capacity(ITERS as usize);
    let mut checkpoints = 0;
    for _ in 0..ITERS {
        let t = Instant::now();
        checkpoints = run(interval, mode);
        times.push(t.elapsed());
    }
    times.sort();
    let median = times[times.len() / 2];
    let total: std::time::Duration = times.iter().sum();
    println!(
        "{label:<16} median {median:>12?}  mean {:>12?}  {checkpoints:>4} checkpoints  ({ITERS} iters)",
        total / ITERS
    );
    (median.as_secs_f64(), checkpoints)
}

fn main() {
    println!("checkpoint_cost (LU, 8 cores, bounded-16, {COMMIT_TARGET} commits)");
    let (base, _) = bench("none", None, CheckpointMode::Full);
    println!();
    for interval in INTERVALS {
        let (full, n_full) = bench(
            &format!("{interval} full"),
            Some(interval),
            CheckpointMode::Full,
        );
        let (delta, n_delta) = bench(
            &format!("{interval} delta"),
            Some(interval),
            CheckpointMode::Delta,
        );
        assert_eq!(
            n_full, n_delta,
            "capture mode must not change the checkpoint schedule"
        );
        let per_cp = |wall: f64| ((wall - base).max(0.0) / n_full.max(1) as f64) * 1e6;
        println!(
            "  interval {interval}: per-checkpoint overhead full {:>8.1} us, delta {:>8.1} us \
             (delta/full {:.2})\n",
            per_cp(full),
            per_cp(delta),
            per_cp(delta) / per_cp(full).max(f64::MIN_POSITIVE),
        );
    }
}
