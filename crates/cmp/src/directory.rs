//! The sharded directory-MESI uncore interconnect.
//!
//! Where the snooping path funnels every coherence action through one bus
//! with one monitoring variable, the directory shards the line space over
//! N address-interleaved **banks** (N = a power of two scaled from the
//! core count). Each bank is an independent simulation resource with:
//!
//! - its own slot-reservation port (occupancy = the directory lookup
//!   latency) — the contended resource replacing the request bus,
//! - its own bank-order [`TimestampMonitor`] — the source of
//!   *directory violations* ([`ViolationKind::Directory`]): a request
//!   serviced out of timestamp order **at that bank**. Sharding the
//!   monitor is what makes slack violations per-resource: two cores
//!   hammering different banks never conflict, exactly as on the target,
//! - per-line [`KeyedMonitor`] entries feeding the existing map-violation
//!   class, and
//! - per-line dirty stamps so delta checkpoints carry only the touched
//!   lines of the touched banks.
//!
//! Sharer sets use [`SharerSet`] instead of the snooping map's `u16`
//! bitmask, lifting the core cap to [`MAX_DIRECTORY_CORES`].

use slacksim_core::checkpoint::Checkpointable;
use slacksim_core::event::CoreId;
use slacksim_core::fxhash::FxHashMap;
use slacksim_core::persist::{ByteReader, ByteWriter, PersistError};
use slacksim_core::time::Cycle;
use slacksim_core::violation::{KeyedMonitor, TimestampMonitor};

use crate::bus::SlotCalendar;
use crate::cache::LineAddr;
use crate::mesi::{BusOp, MesiState};
use crate::sharers::SharerSet;

/// Core-count ceiling of the directory uncore.
pub const MAX_DIRECTORY_CORES: usize = 1024;

/// Bank-count ceiling; past this, extra banks stop buying parallelism in
/// the simulated timing while growing every snapshot.
const MAX_BANKS: usize = 64;

/// Number of address-interleaved banks for a given core count: one bank
/// per four cores, rounded up to a power of two (interleaving needs a
/// mask), clamped to `1..=`[`MAX_BANKS`].
pub fn bank_count(n_cores: usize) -> usize {
    (n_cores / 4).next_power_of_two().clamp(1, MAX_BANKS)
}

/// Directory residence state of one line.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct DirEntry {
    /// Cores holding the line (any state).
    sharers: SharerSet,
    /// Core holding the line in M or E, if any.
    owner: Option<CoreId>,
}

/// Outcome of one directory access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirAccess {
    /// Cycle at which the request owns the bank port (slot start; the
    /// lookup completes one port occupancy later).
    pub grant: Cycle,
    /// Whether the request had to wait for the bank port.
    pub conflict: bool,
    /// The request arrived out of timestamp order at this bank
    /// ([`ViolationKind::Directory`](slacksim_core::violation::ViolationKind::Directory)).
    pub order_violation: bool,
    /// The bank-order monitor's largest previously observed timestamp.
    pub order_high_water: Cycle,
    /// The request arrived out of timestamp order for this *line*
    /// (the existing map-violation class).
    pub line_violation: bool,
    /// The line monitor's largest previously observed timestamp.
    pub line_high_water: Cycle,
    /// Remote core that supplies the data from its M/E copy, if any.
    pub data_from_owner: Option<CoreId>,
    /// State granted to the requester's L1.
    pub grant_state: MesiState,
    /// Remote copies to invalidate (ascending core order).
    pub invalidate: Vec<CoreId>,
    /// Remote copies to downgrade to S (ascending core order).
    pub downgrade: Vec<CoreId>,
}

/// One directory bank: sharded MESI state, port, and monitors.
#[derive(Debug, Clone)]
struct DirBank {
    entries: FxHashMap<LineAddr, DirEntry>,
    line_monitor: KeyedMonitor<LineAddr>,
    order_monitor: TimestampMonitor,
    port: SlotCalendar,
    n_cores: usize,
    transitions: u64,
    line_violations: u64,
    order_violations: u64,
    conflicts: u64,
    busy_cycles: u64,
    /// Mutation generation (tracking metadata: excluded from equality,
    /// never rewound by restores).
    gen: u64,
    /// Per-line dirty stamps; a stamp outlives a reclaimed entry so
    /// deltas and restores learn about removals.
    dirty: FxHashMap<LineAddr, u64>,
}

/// Equality is over model state only; generation and dirty stamps are
/// capture bookkeeping.
impl PartialEq for DirBank {
    fn eq(&self, other: &Self) -> bool {
        self.entries == other.entries
            && self.line_monitor == other.line_monitor
            && self.order_monitor == other.order_monitor
            && self.port == other.port
            && self.n_cores == other.n_cores
            && self.transitions == other.transitions
            && self.line_violations == other.line_violations
            && self.order_violations == other.order_violations
            && self.conflicts == other.conflicts
            && self.busy_cycles == other.busy_cycles
    }
}

impl Eq for DirBank {}

impl DirBank {
    fn new(n_cores: usize, lookup_latency: u64) -> Self {
        DirBank {
            entries: FxHashMap::default(),
            line_monitor: KeyedMonitor::new(),
            order_monitor: TimestampMonitor::new(),
            port: SlotCalendar::new(lookup_latency),
            n_cores,
            transitions: 0,
            line_violations: 0,
            order_violations: 0,
            conflicts: 0,
            busy_cycles: 0,
            gen: 0,
            dirty: FxHashMap::default(),
        }
    }

    /// Applies one coherence transaction to this bank: arbitrates the
    /// port, observes both monitors, and performs the MESI transition
    /// (same protocol as the snooping map, over scalable sharer sets).
    fn access(&mut self, op: BusOp, line: LineAddr, from: CoreId, ts: Cycle) -> DirAccess {
        debug_assert!(from.index() < self.n_cores, "unknown core {from}");
        self.gen += 1;
        self.transitions += 1;
        self.dirty.insert(line, self.gen);

        let order_high_water = self.order_monitor.high_water();
        let order_violation = self.order_monitor.observe(ts);
        if order_violation {
            self.order_violations += 1;
        }
        let (line_violation, line_high_water) = self.line_monitor.observe_high_water(line, ts);
        if line_violation {
            self.line_violations += 1;
        }
        let slot = self.port.reserve(ts.as_u64());
        let conflict = slot != ts.as_u64();
        if conflict {
            self.conflicts += 1;
        }
        self.busy_cycles += self.port.occupancy;

        let entry = self.entries.entry(line).or_default();
        let mut invalidate = Vec::new();
        let mut downgrade = Vec::new();
        let mut data_from_owner = None;

        let grant_state = match op {
            BusOp::Rd => {
                if let Some(owner) = entry.owner {
                    if owner != from {
                        // Possible dirty remote copy: owner supplies and
                        // downgrades (conservative flush, as on the bus
                        // path).
                        data_from_owner = Some(owner);
                        downgrade.push(owner);
                        entry.owner = None;
                    }
                }
                let other = entry.sharers.iter().any(|c| c != from);
                entry.sharers.insert(from);
                if other {
                    MesiState::Shared
                } else {
                    entry.owner = Some(from);
                    MesiState::Exclusive
                }
            }
            BusOp::RdX | BusOp::Upgr => {
                if let Some(owner) = entry.owner {
                    if owner != from {
                        data_from_owner = Some(owner);
                    }
                }
                invalidate.extend(entry.sharers.iter().filter(|&c| c != from));
                entry.sharers = SharerSet::only(from);
                entry.owner = Some(from);
                MesiState::Modified
            }
            BusOp::Wb => {
                entry.sharers.remove(from);
                if entry.owner == Some(from) {
                    entry.owner = None;
                }
                MesiState::Invalid
            }
        };

        if entry.sharers.is_empty() {
            self.entries.remove(&line);
        }

        DirAccess {
            grant: Cycle::new(slot),
            conflict,
            order_violation,
            order_high_water,
            line_violation,
            line_high_water,
            data_from_owner,
            grant_state,
            invalidate,
            downgrade,
        }
    }

    fn compact_monitor(&mut self, horizon: Cycle) -> usize {
        let removed = self.line_monitor.compact(horizon);
        for &line in &removed {
            self.gen += 1;
            self.dirty.insert(line, self.gen);
        }
        removed.len()
    }

    /// Serializes the bank's model state (sorted by line; configuration —
    /// core count, occupancy — is validated, not stored).
    fn save_state(&self, w: &mut ByteWriter) {
        self.port.save_state(w);
        w.u64(self.order_monitor.high_water().as_u64());
        let mut lines: Vec<LineAddr> = self.entries.keys().copied().collect();
        lines.sort_unstable();
        w.u32(lines.len() as u32);
        for line in lines {
            let e = &self.entries[&line];
            w.u64(line.raw());
            e.sharers.save(w);
            match e.owner {
                Some(c) => {
                    w.bool(true);
                    w.u16(c.index() as u16);
                }
                None => w.bool(false),
            }
        }
        let mut monitors: Vec<(LineAddr, Cycle)> =
            self.line_monitor.iter().map(|(&l, hw)| (l, hw)).collect();
        monitors.sort_unstable_by_key(|&(l, _)| l);
        w.u32(monitors.len() as u32);
        for (line, hw) in monitors {
            w.u64(line.raw());
            w.u64(hw.as_u64());
        }
        w.u64(self.transitions);
        w.u64(self.line_violations);
        w.u64(self.order_violations);
        w.u64(self.conflicts);
        w.u64(self.busy_cycles);
    }

    fn load_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), PersistError> {
        self.port.load_state(r)?;
        self.order_monitor = TimestampMonitor::with_high_water(Cycle::new(r.u64()?));
        let mut entries = FxHashMap::default();
        for _ in 0..r.u32()? {
            let line = LineAddr::new(r.u64()?);
            let sharers = SharerSet::load(r, self.n_cores)?;
            let owner = if r.bool()? {
                let idx = r.u16()?;
                if (idx as usize) >= self.n_cores {
                    return Err(PersistError::Corrupt("directory owner is an unknown core"));
                }
                Some(CoreId::new(idx))
            } else {
                None
            };
            if sharers.is_empty() {
                return Err(PersistError::Corrupt("directory entry with no sharers"));
            }
            entries.insert(line, DirEntry { sharers, owner });
        }
        let mut line_monitor = KeyedMonitor::new();
        for _ in 0..r.u32()? {
            let line = LineAddr::new(r.u64()?);
            line_monitor.set(line, Some(Cycle::new(r.u64()?)));
        }
        self.entries = entries;
        self.line_monitor = line_monitor;
        self.transitions = r.u64()?;
        self.line_violations = r.u64()?;
        self.order_violations = r.u64()?;
        self.conflicts = r.u64()?;
        self.busy_cycles = r.u64()?;
        self.gen = 0;
        self.dirty.clear();
        Ok(())
    }
}

/// Incremental carrier for one bank: the dirty lines since the baseline
/// plus the bank-global resources (port, order monitor, counters), which
/// move as one blob because every access dirties them anyway.
#[derive(Debug, Clone)]
struct BankDelta {
    gen: u64,
    payload: BankPayload,
    /// `None` when the bank is clean since the baseline.
    global: Option<Box<BankGlobal>>,
}

#[derive(Debug, Clone)]
enum BankPayload {
    /// Per dirty line, the entry's full state (`None` = reclaimed) and
    /// its line-monitor high-water mark (`None` = never touched).
    Sparse(Vec<(LineAddr, Option<DirEntry>, Option<Cycle>)>),
    /// Bulk fallback once most tracked lines are dirty (same crossover
    /// as the snooping map's delta).
    Dense(Box<DenseBank>),
}

#[derive(Debug, Clone)]
struct DenseBank {
    entries: FxHashMap<LineAddr, DirEntry>,
    line_monitor: KeyedMonitor<LineAddr>,
    dirty: FxHashMap<LineAddr, u64>,
}

#[derive(Debug, Clone)]
struct BankGlobal {
    port: SlotCalendar,
    order_high_water: Cycle,
    transitions: u64,
    line_violations: u64,
    order_violations: u64,
    conflicts: u64,
    busy_cycles: u64,
}

impl BankDelta {
    fn dirty_lines(&self) -> usize {
        match &self.payload {
            BankPayload::Sparse(lines) => lines.len(),
            BankPayload::Dense(state) => state.dirty.len(),
        }
    }
}

impl Checkpointable for DirBank {
    type Delta = BankDelta;

    fn generation(&self) -> u64 {
        self.gen
    }

    fn capture_delta(&mut self, since_gen: u64) -> BankDelta {
        self.dirty.retain(|_, stamp| *stamp > since_gen);
        let dirty = self.dirty.len();
        let tracked = self.entries.len() + self.line_monitor.len();
        let payload = if dirty >= 256 && dirty * 8 >= tracked {
            BankPayload::Dense(Box::new(DenseBank {
                entries: self.entries.clone(),
                line_monitor: self.line_monitor.clone(),
                dirty: self.dirty.clone(),
            }))
        } else {
            BankPayload::Sparse(
                self.dirty
                    .keys()
                    .map(|&line| {
                        (
                            line,
                            self.entries.get(&line).cloned(),
                            self.line_monitor.get(&line),
                        )
                    })
                    .collect(),
            )
        };
        BankDelta {
            gen: self.gen,
            payload,
            global: (self.gen > since_gen).then(|| {
                Box::new(BankGlobal {
                    port: self.port.clone(),
                    order_high_water: self.order_monitor.high_water(),
                    transitions: self.transitions,
                    line_violations: self.line_violations,
                    order_violations: self.order_violations,
                    conflicts: self.conflicts,
                    busy_cycles: self.busy_cycles,
                })
            }),
        }
    }

    fn apply_delta(&mut self, delta: BankDelta) {
        match delta.payload {
            BankPayload::Sparse(lines) => {
                for (line, entry, high_water) in lines {
                    match entry {
                        Some(e) => {
                            self.entries.insert(line, e);
                        }
                        None => {
                            self.entries.remove(&line);
                        }
                    }
                    self.line_monitor.set(line, high_water);
                    self.dirty.insert(line, delta.gen);
                }
            }
            BankPayload::Dense(state) => {
                self.entries = state.entries;
                self.line_monitor = state.line_monitor;
                self.dirty = state.dirty;
            }
        }
        if let Some(global) = delta.global {
            self.port = global.port;
            self.order_monitor = TimestampMonitor::with_high_water(global.order_high_water);
            self.transitions = global.transitions;
            self.line_violations = global.line_violations;
            self.order_violations = global.order_violations;
            self.conflicts = global.conflicts;
            self.busy_cycles = global.busy_cycles;
        }
        self.gen = self.gen.max(delta.gen);
    }

    fn restore_from(&mut self, base: &Self, since_gen: u64) {
        if self.gen <= since_gen {
            return;
        }
        let dirty_lines: Vec<LineAddr> = self
            .dirty
            .iter()
            .filter(|&(_, &stamp)| stamp > since_gen)
            .map(|(&line, _)| line)
            .collect();
        for line in dirty_lines {
            match base.entries.get(&line) {
                Some(e) => {
                    self.entries.insert(line, e.clone());
                }
                None => {
                    self.entries.remove(&line);
                }
            }
            self.line_monitor.set(line, base.line_monitor.get(&line));
        }
        self.port = base.port.clone();
        self.order_monitor = base.order_monitor;
        self.transitions = base.transitions;
        self.line_violations = base.line_violations;
        self.order_violations = base.order_violations;
        self.conflicts = base.conflicts;
        self.busy_cycles = base.busy_cycles;
    }
}

/// The sharded directory: N address-interleaved [`DirBank`]s behind one
/// facade with the same checkpoint/persist surface as the other uncore
/// components.
///
/// # Examples
///
/// ```
/// use slacksim_cmp::cache::LineAddr;
/// use slacksim_cmp::directory::Directory;
/// use slacksim_cmp::mesi::{BusOp, MesiState};
/// use slacksim_core::event::CoreId;
/// use slacksim_core::time::Cycle;
///
/// let mut dir = Directory::new(64, 4);
/// let a = dir.access(BusOp::Rd, LineAddr::new(0x40), CoreId::new(0), Cycle::new(10));
/// assert_eq!(a.grant_state, MesiState::Exclusive);
/// assert_eq!(dir.banks(), 16); // 64 cores / 4, power of two
/// ```
#[derive(Debug, Clone)]
pub struct Directory {
    n_cores: usize,
    banks: Vec<DirBank>,
    /// Tracking metadata: last capture's per-bank generations keyed by
    /// the composite token (same scheme as the uncore facade).
    cp_baseline: Option<(u64, Vec<u64>)>,
}

/// Equality is over model state only; the capture baseline is tracking
/// metadata.
impl PartialEq for Directory {
    fn eq(&self, other: &Self) -> bool {
        self.n_cores == other.n_cores && self.banks == other.banks
    }
}

impl Eq for Directory {}

/// Incremental state carrier for the [`Directory`]: one slot per bank,
/// dirty banks only carry their global blob.
#[derive(Debug, Clone)]
pub struct DirectoryDelta {
    banks: Vec<BankDelta>,
}

impl DirectoryDelta {
    /// Number of banks that mutated since the capture baseline.
    pub fn dirty_banks(&self) -> usize {
        self.banks.iter().filter(|b| b.global.is_some()).count()
    }

    /// Total dirty lines carried across all banks.
    pub fn dirty_lines(&self) -> usize {
        self.banks.iter().map(|b| b.dirty_lines()).sum()
    }
}

impl Directory {
    /// Creates a directory for `n_cores` cores with the given per-bank
    /// lookup occupancy.
    ///
    /// # Panics
    ///
    /// Panics if `n_cores` is 0 or exceeds [`MAX_DIRECTORY_CORES`], or if
    /// `lookup_latency` is 0.
    pub fn new(n_cores: usize, lookup_latency: u64) -> Self {
        assert!(
            (1..=MAX_DIRECTORY_CORES).contains(&n_cores),
            "core count must be between 1 and {MAX_DIRECTORY_CORES}"
        );
        let n_banks = bank_count(n_cores);
        Directory {
            n_cores,
            banks: (0..n_banks)
                .map(|_| DirBank::new(n_cores, lookup_latency))
                .collect(),
            cp_baseline: None,
        }
    }

    /// The bank index `line` interleaves to.
    pub fn bank_of(&self, line: LineAddr) -> usize {
        (line.raw() as usize) & (self.banks.len() - 1)
    }

    /// Number of banks.
    pub fn banks(&self) -> usize {
        self.banks.len()
    }

    /// Routes one coherence transaction to its bank.
    pub fn access(&mut self, op: BusOp, line: LineAddr, from: CoreId, ts: Cycle) -> DirAccess {
        let bank = self.bank_of(line);
        self.banks[bank].access(op, line, from, ts)
    }

    /// Total transactions across banks.
    pub fn transitions(&self) -> u64 {
        self.banks.iter().map(|b| b.transitions).sum()
    }

    /// Total per-line (map-class) violations across banks.
    pub fn line_violations(&self) -> u64 {
        self.banks.iter().map(|b| b.line_violations).sum()
    }

    /// Total bank-order (directory-class) violations across banks.
    pub fn order_violations(&self) -> u64 {
        self.banks.iter().map(|b| b.order_violations).sum()
    }

    /// Total port conflicts across banks.
    pub fn conflicts(&self) -> u64 {
        self.banks.iter().map(|b| b.conflicts).sum()
    }

    /// Total port busy cycles across banks (utilisation numerator; the
    /// denominator is cycles × banks).
    pub fn busy_cycles(&self) -> u64 {
        self.banks.iter().map(|b| b.busy_cycles).sum()
    }

    /// Lines currently tracked across banks.
    pub fn tracked_lines(&self) -> usize {
        self.banks.iter().map(|b| b.entries.len()).sum()
    }

    /// Per-line monitors currently tracked across banks.
    pub fn monitor_entries(&self) -> usize {
        self.banks.iter().map(|b| b.line_monitor.len()).sum()
    }

    /// Returns the set of cores currently holding `line` (testing aid).
    pub fn sharers(&self, line: LineAddr) -> Vec<CoreId> {
        let bank = self.bank_of(line);
        match self.banks[bank].entries.get(&line) {
            Some(e) => e.sharers.iter().collect(),
            None => Vec::new(),
        }
    }

    /// Drops settled per-line monitors in every bank (see the map's
    /// compaction contract); returns how many were reclaimed.
    pub fn compact_monitors(&mut self, horizon: Cycle) -> usize {
        self.banks
            .iter_mut()
            .map(|b| b.compact_monitor(horizon))
            .sum()
    }

    fn bank_gens(&self) -> Vec<u64> {
        self.banks.iter().map(|b| b.gen).collect()
    }

    /// Resolves the composite `since_gen` token to per-bank baselines
    /// (same three cases as the uncore facade: exact recorded capture,
    /// unmutated current generation, or conservative since-0).
    fn resolve_baseline(&self, since_gen: u64) -> Vec<u64> {
        match &self.cp_baseline {
            Some((g, gens)) if *g == since_gen => gens.clone(),
            _ if since_gen == self.generation() => self.bank_gens(),
            _ => vec![0; self.banks.len()],
        }
    }

    /// Serializes the directory's model state (bank count is validated
    /// against configuration on load, not trusted from the stream).
    pub fn save_state(&self, w: &mut ByteWriter) {
        w.u32(self.banks.len() as u32);
        for bank in &self.banks {
            bank.save_state(w);
        }
    }

    /// Restores state written by [`Directory::save_state`].
    ///
    /// # Errors
    ///
    /// Returns [`PersistError`] for malformed bytes or a bank count that
    /// does not match this directory's configuration.
    pub fn load_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), PersistError> {
        if r.u32()? as usize != self.banks.len() {
            return Err(PersistError::Corrupt(
                "directory bank count does not match configuration",
            ));
        }
        for bank in &mut self.banks {
            bank.load_state(r)?;
        }
        self.cp_baseline = None;
        Ok(())
    }
}

impl Checkpointable for Directory {
    type Delta = DirectoryDelta;

    /// Composite generation: the sum of the bank generations (monotone —
    /// every access bumps exactly one bank).
    fn generation(&self) -> u64 {
        self.banks.iter().map(|b| b.gen).sum()
    }

    fn capture_delta(&mut self, since_gen: u64) -> DirectoryDelta {
        let baseline = self.resolve_baseline(since_gen);
        let delta = DirectoryDelta {
            banks: self
                .banks
                .iter_mut()
                .zip(&baseline)
                .map(|(bank, &since)| bank.capture_delta(since))
                .collect(),
        };
        self.cp_baseline = Some((self.generation(), self.bank_gens()));
        delta
    }

    fn apply_delta(&mut self, delta: DirectoryDelta) {
        debug_assert_eq!(delta.banks.len(), self.banks.len());
        for (bank, bd) in self.banks.iter_mut().zip(delta.banks) {
            bank.apply_delta(bd);
        }
    }

    fn restore_from(&mut self, base: &Self, since_gen: u64) {
        let baseline = self.resolve_baseline(since_gen);
        for ((bank, base_bank), &since) in self.banks.iter_mut().zip(&base.banks).zip(&baseline) {
            bank.restore_from(base_bank, since);
        }
        // cp_baseline is deliberately kept: the checkpoint it describes
        // is still the live baseline for the next capture.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: u16) -> CoreId {
        CoreId::new(i)
    }

    fn ts(t: u64) -> Cycle {
        Cycle::new(t)
    }

    fn dir(cores: usize) -> Directory {
        Directory::new(cores, 4)
    }

    #[test]
    fn bank_count_scales_as_pow2_with_cores() {
        assert_eq!(bank_count(1), 1);
        assert_eq!(bank_count(8), 2);
        assert_eq!(bank_count(16), 4);
        assert_eq!(bank_count(64), 16);
        assert_eq!(bank_count(100), 32);
        assert_eq!(bank_count(1024), 64, "clamped at MAX_BANKS");
    }

    #[test]
    fn lines_interleave_across_banks() {
        let d = dir(64);
        assert_eq!(d.banks(), 16);
        assert_eq!(d.bank_of(LineAddr::new(0)), 0);
        assert_eq!(d.bank_of(LineAddr::new(17)), 1);
        assert_eq!(d.bank_of(LineAddr::new(15)), 15);
    }

    #[test]
    fn mesi_grants_match_the_snooping_map() {
        let mut d = dir(64);
        let line = LineAddr::new(0x99);
        let first = d.access(BusOp::Rd, line, c(0), ts(10));
        assert_eq!(first.grant_state, MesiState::Exclusive);
        let second = d.access(BusOp::Rd, line, c(33), ts(20));
        assert_eq!(second.grant_state, MesiState::Shared);
        assert_eq!(second.downgrade, vec![c(0)]);
        assert_eq!(second.data_from_owner, Some(c(0)));
        let third = d.access(BusOp::RdX, line, c(63), ts(30));
        assert_eq!(third.grant_state, MesiState::Modified);
        assert_eq!(third.invalidate, vec![c(0), c(33)]);
        assert_eq!(d.sharers(line), vec![c(63)]);
        let wb = d.access(BusOp::Wb, line, c(63), ts(40));
        assert_eq!(wb.grant_state, MesiState::Invalid);
        assert_eq!(d.tracked_lines(), 0, "empty entries are reclaimed");
    }

    #[test]
    fn order_violations_are_per_bank_not_global() {
        let mut d = dir(64); // 16 banks
        let bank0 = LineAddr::new(16); // bank 0
        let bank1 = LineAddr::new(17); // bank 1
        d.access(BusOp::Rd, bank0, c(0), ts(100));
        // Earlier timestamp at a *different* bank: no violation — the
        // whole point of sharding the monitor.
        let other = d.access(BusOp::Rd, bank1, c(1), ts(50));
        assert!(!other.order_violation);
        // Earlier timestamp at the *same* bank (different line): bank
        // order violation but no line violation.
        let same = d.access(BusOp::Rd, LineAddr::new(32), c(2), ts(60));
        assert!(same.order_violation);
        assert!(!same.line_violation);
        assert_eq!(d.order_violations(), 1);
        assert_eq!(d.line_violations(), 0);
    }

    #[test]
    fn line_violations_ride_the_line_monitor() {
        let mut d = dir(8);
        let line = LineAddr::new(0x40);
        d.access(BusOp::Rd, line, c(0), ts(100));
        let v = d.access(BusOp::Rd, line, c(1), ts(50));
        assert!(v.line_violation);
        assert!(v.order_violation, "same bank too");
        assert_eq!(v.line_high_water, ts(100));
    }

    #[test]
    fn port_conflicts_serialise_same_bank_same_cycle() {
        let mut d = dir(8); // 2 banks, lookup occupancy 4
        let line = LineAddr::new(2); // bank 0
        let a = d.access(BusOp::Rd, line, c(0), ts(10));
        let b = d.access(BusOp::Rd, LineAddr::new(4), c(1), ts(10)); // same bank
        assert_eq!(a.grant, ts(10));
        assert!(!a.conflict);
        assert_eq!(b.grant, ts(14), "port occupied for lookup_latency");
        assert!(b.conflict);
        // Different bank at the same cycle: no conflict.
        let other = d.access(BusOp::Rd, LineAddr::new(3), c(2), ts(10));
        assert!(!other.conflict);
        assert_eq!(d.conflicts(), 1);
        assert_eq!(d.busy_cycles(), 12);
    }

    #[test]
    fn sharer_sets_scale_past_sixteen_cores() {
        let mut d = dir(256);
        let line = LineAddr::new(0x80);
        for i in 0..256u16 {
            d.access(BusOp::Rd, line, c(i), ts(10 + u64::from(i)));
        }
        assert_eq!(d.sharers(line).len(), 256);
        let w = d.access(BusOp::RdX, line, c(200), ts(1000));
        assert_eq!(w.invalidate.len(), 255);
        // Ascending core order for deterministic snoop delivery.
        assert!(w.invalidate.windows(2).all(|p| p[0] < p[1]));
        assert_eq!(d.sharers(line), vec![c(200)]);
    }

    #[test]
    fn delta_roundtrip_covers_only_dirty_banks() {
        let mut live = dir(64); // 16 banks
        live.access(BusOp::Rd, LineAddr::new(16), c(0), ts(1)); // bank 0
        let mut base = live.clone();
        let g0 = live.generation();
        let seed = live.capture_delta(g0);
        assert_eq!(seed.dirty_banks(), 0, "clean since capture");
        assert_eq!(seed.dirty_lines(), 0);

        live.access(BusOp::RdX, LineAddr::new(16), c(1), ts(2)); // bank 0
        live.access(BusOp::Rd, LineAddr::new(19), c(2), ts(3)); // bank 3
        let delta = live.capture_delta(g0);
        assert_eq!(delta.dirty_banks(), 2, "banks 0 and 3 only");
        assert_eq!(delta.dirty_lines(), 2);
        base.apply_delta(delta);
        assert_eq!(base, live);
    }

    #[test]
    fn restore_rewinds_dirty_banks_to_the_checkpoint() {
        let mut live = dir(64);
        live.access(BusOp::Rd, LineAddr::new(16), c(0), ts(10));
        let cp = live.clone();
        let g0 = live.generation();
        let _ = live.capture_delta(g0);

        live.access(BusOp::Wb, LineAddr::new(16), c(0), ts(20)); // reclaim
        live.access(BusOp::Rd, LineAddr::new(19), c(1), ts(5)); // other bank
        live.restore_from(&cp, g0);
        assert_eq!(live, cp, "restore rewinds to the checkpoint");
        // The reclaimed entry is back and its line monitor remembers
        // ts(10): an earlier access violates again after the restore.
        assert!(
            live.access(BusOp::Rd, LineAddr::new(16), c(1), ts(7))
                .line_violation
        );
    }

    #[test]
    fn unknown_baseline_token_degrades_to_full_restore() {
        let mut live = dir(16);
        live.access(BusOp::Rd, LineAddr::new(4), c(0), ts(10));
        let base = live.clone();
        live.access(BusOp::RdX, LineAddr::new(9), c(1), ts(20));
        live.restore_from(&base, 12345);
        assert_eq!(live, base);
    }

    #[test]
    fn save_load_round_trip_is_bit_identical() {
        let mut live = dir(64);
        for i in 0..40u16 {
            live.access(BusOp::Rd, LineAddr::new(0x80), c(i), ts(10 + u64::from(i)));
        }
        live.access(BusOp::RdX, LineAddr::new(0x81), c(5), ts(100));
        live.access(BusOp::Wb, LineAddr::new(0x81), c(5), ts(110)); // reclaimed, monitor kept
        live.access(BusOp::Rd, LineAddr::new(0x82), c(9), ts(50)); // order violation

        let mut w = ByteWriter::new();
        live.save_state(&mut w);
        let bytes = w.into_bytes();

        let mut restored = dir(64);
        let mut r = ByteReader::new(&bytes);
        restored.load_state(&mut r).expect("load succeeds");
        r.finish().expect("no trailing bytes");
        assert_eq!(restored, live);
        // A reclaimed line's monitor survives the round trip.
        assert!(
            restored
                .access(BusOp::Rd, LineAddr::new(0x81), c(0), ts(90))
                .line_violation
        );

        // A 16-core directory has a different bank count: rejected.
        let mut other = dir(16);
        assert!(other.load_state(&mut ByteReader::new(&bytes)).is_err());
    }

    #[test]
    fn compaction_drops_settled_monitors_in_every_bank() {
        let mut live = dir(64);
        live.access(BusOp::Rd, LineAddr::new(16), c(0), ts(10));
        live.access(BusOp::Rd, LineAddr::new(17), c(1), ts(50));
        let mut base = live.clone();
        let g0 = live.generation();

        assert_eq!(live.monitor_entries(), 2);
        assert_eq!(live.compact_monitors(ts(10)), 1, "only bank 0 settled");
        assert_eq!(live.monitor_entries(), 1);
        base.apply_delta(live.capture_delta(g0));
        assert_eq!(base, live, "removals travel through the delta");
    }

    #[test]
    #[should_panic(expected = "between 1 and 1024")]
    fn too_many_cores_rejected() {
        let _ = Directory::new(2048, 4);
    }
}
