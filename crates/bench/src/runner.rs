//! Shared run helpers for the experiment modules.

use slacksim::scheme::{AdaptiveConfig, Scheme};
use slacksim::{Benchmark, EngineKind, SimReport, Simulation};

use crate::scale::Scale;

/// Builds the standard simulation for an experiment: the paper's target
/// (scaled core count), the given benchmark, the scale's commit target and
/// seed.
pub fn sim(scale: &Scale, benchmark: Benchmark) -> Simulation {
    let mut s = Simulation::new(benchmark);
    s.cores(scale.cores)
        .commit_target(scale.commit)
        .seed(scale.seed);
    s
}

/// Runs the deterministic engine with the given scheme.
///
/// # Panics
///
/// Panics if the engine reports an error (experiments treat that as a
/// harness bug).
pub fn run_sequential(scale: &Scale, benchmark: Benchmark, scheme: Scheme) -> SimReport {
    sim(scale, benchmark)
        .scheme(scheme)
        .engine(EngineKind::Sequential)
        .run()
        .expect("sequential run")
}

/// Runs the threaded (wall-clock) engine with the given scheme.
///
/// # Panics
///
/// Panics if the engine reports an error.
pub fn run_threaded(scale: &Scale, benchmark: Benchmark, scheme: Scheme) -> SimReport {
    sim(scale, benchmark)
        .scheme(scheme)
        .engine(EngineKind::Threaded)
        .run()
        .expect("threaded run")
}

/// Mean slack bound over a run's adaptive trace (0 when empty).
pub fn mean_bound(report: &SimReport) -> f64 {
    if report.bound_trace.is_empty() {
        0.0
    } else {
        report
            .bound_trace
            .iter()
            .map(|&(_, b)| b as f64)
            .sum::<f64>()
            / report.bound_trace.len() as f64
    }
}

/// The paper's adaptive configuration for a target rate in percent and a
/// violation band in percent.
pub fn adaptive(target_percent: f64, band_percent: f64) -> AdaptiveConfig {
    AdaptiveConfig::percent(target_percent, band_percent)
}

/// Calibrates an adaptive configuration for the threaded engine on this
/// host: runs the deterministic engine (whose emulated 8-context host
/// detects violations realistically), then clamps the threaded
/// controller's `max_bound` to just above the bound region the loop
/// settled in.
///
/// Rationale (documented in `EXPERIMENTS.md`): on a single-CPU container
/// the manager thread only runs between core-thread time slices, so its
/// global queue sorts each backlog and on-line violation detection
/// under-reports; without the clamp the threaded controller would drift to
/// its maximum bound and behave like unbounded slack instead of like the
/// throttled loop the paper measures.
pub fn calibrated_adaptive(
    scale: &Scale,
    benchmark: Benchmark,
    target_percent: f64,
    band_percent: f64,
) -> (AdaptiveConfig, SimReport) {
    let cfg = adaptive(target_percent, band_percent);
    let seq = run_sequential(scale, benchmark, Scheme::Adaptive(cfg.clone()));
    let clamp = (mean_bound(&seq).ceil() as u64 + 2).clamp(cfg.min_bound, cfg.max_bound);
    let threaded_cfg = AdaptiveConfig {
        max_bound: clamp,
        ..cfg
    };
    (threaded_cfg, seq)
}

/// Formats a violation rate as a percentage with enough digits for the
/// low-rate regime.
pub fn fmt_rate(rate: f64) -> String {
    format!("{:.4}%", rate * 100.0)
}

/// Formats seconds with millisecond resolution.
pub fn fmt_secs(secs: f64) -> String {
    format!("{secs:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            commit: 20_000,
            seed: 1,
            cores: 2,
        }
    }

    #[test]
    fn sequential_run_completes() {
        let r = run_sequential(&tiny(), Benchmark::Lu, Scheme::CycleByCycle);
        assert!(r.committed >= 20_000);
        assert_eq!(r.violations.total(), 0);
    }

    #[test]
    fn mean_bound_tracks_the_static_bound() {
        let r = run_sequential(&tiny(), Benchmark::Lu, Scheme::BoundedSlack { bound: 4 });
        assert_eq!(mean_bound(&r), 4.0, "static pacers trace their bound");
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_rate(0.000123), "0.0123%");
        assert_eq!(fmt_secs(1.23456), "1.235");
    }
}
