//! Seeded property tests for sweep-spec grid expansion, driven by the
//! in-tree deterministic [`Xoshiro256`] RNG (no external crates,
//! bit-identical on every run).
//!
//! The properties a design-space grid must uphold, over randomly
//! generated specs:
//!
//! * cardinality is exactly the product of the six axis lengths;
//! * expansion yields that many jobs with dense indices `0..n`;
//! * job identity tokens are unique across the whole grid;
//! * expansion order is stable across independent parses of the same
//!   document, and the canonical fingerprint is reproduced;
//! * a randomly corrupted spec is rejected with an error message that
//!   names the offence — never silently defaulted or reordered.

use slacksim_core::campaign::{Job, SweepSpec};
use slacksim_core::rng::Xoshiro256;

const CASES: u64 = 64;

const SCHEMES: [&str; 6] = ["cc", "bounded", "unbounded", "quantum", "adaptive", "p2p"];
const WORKLOADS: [&str; 4] = ["barnes", "fft", "lu", "water"];

/// Picks a random non-empty subset of `pool`, preserving pool order (the
/// spec parser rejects duplicates, so subsets keep values distinct).
fn subset<'a>(rng: &mut Xoshiro256, pool: &[&'a str]) -> Vec<&'a str> {
    loop {
        let picked: Vec<&str> = pool.iter().copied().filter(|_| rng.chance(1, 2)).collect();
        if !picked.is_empty() {
            return picked;
        }
    }
}

/// Generates 1–3 strictly increasing values in `[lo, hi]` — distinct by
/// construction, as the duplicate-refusing parser requires.
fn increasing(rng: &mut Xoshiro256, lo: u64, hi: u64) -> Vec<u64> {
    let n = 1 + rng.next_below(3);
    let mut out = Vec::with_capacity(n as usize);
    let mut v = rng.next_range(lo, hi);
    for _ in 0..n {
        out.push(v);
        if v >= hi {
            break;
        }
        v = rng.next_range(v + 1, hi);
    }
    out
}

fn list(values: &[u64]) -> String {
    values
        .iter()
        .map(u64::to_string)
        .collect::<Vec<_>>()
        .join(",")
}

fn quoted(values: &[&str]) -> String {
    values
        .iter()
        .map(|v| format!("\"{v}\""))
        .collect::<Vec<_>>()
        .join(",")
}

/// Renders one random, valid sweep spec and returns it with its
/// expected cardinality.
fn random_spec(rng: &mut Xoshiro256) -> (String, u64) {
    let schemes = subset(rng, &SCHEMES);
    let workloads = subset(rng, &WORKLOADS);
    let bounds = increasing(rng, 1, 128);
    let quantums = increasing(rng, 1, 1000);
    let cores = increasing(rng, 1, 16);
    let seeds = increasing(rng, 0, 1 << 20);
    let commit = rng.next_range(1, 1_000_000);

    let mut extras = String::new();
    if rng.chance(1, 2) {
        extras.push_str(&format!(",\"checkpoint\":{}", rng.next_range(1, 100_000)));
        if rng.chance(1, 2) {
            extras.push_str(",\"checkpoint_mode\":\"delta\"");
        }
    }
    if rng.chance(1, 2) {
        extras.push_str(&format!(",\"workers\":{}", rng.next_range(1, 64)));
    }
    if rng.chance(1, 2) {
        extras.push_str(&format!(",\"max_cycles\":{}", rng.next_range(1, 1 << 40)));
    }

    let src = format!(
        r#"{{"v":1,"commit":{commit}{extras},"axes":{{
            "scheme":[{}],"bound":[{}],"quantum":[{}],
            "cores":[{}],"workload":[{}],"seed":[{}]}}}}"#,
        quoted(&schemes),
        list(&bounds),
        list(&quantums),
        list(&cores),
        quoted(&workloads),
        list(&seeds),
    );
    let cardinality = (schemes.len()
        * bounds.len()
        * quantums.len()
        * cores.len()
        * workloads.len()
        * seeds.len()) as u64;
    (src, cardinality)
}

#[test]
fn cardinality_is_the_product_of_axis_lengths() {
    for case in 0..CASES {
        let mut rng = Xoshiro256::new(0x5EED_0001 + case);
        let (src, want) = random_spec(&mut rng);
        let spec = SweepSpec::parse(&src).unwrap_or_else(|e| panic!("case {case}: {e}\n{src}"));
        assert_eq!(spec.cardinality(), want, "case {case}");
        let jobs = spec.expand();
        assert_eq!(jobs.len() as u64, want, "case {case}: expansion size");
        for (i, job) in jobs.iter().enumerate() {
            assert_eq!(job.index, i as u64, "case {case}: indices are dense");
        }
    }
}

#[test]
fn job_ids_are_unique_across_the_grid() {
    for case in 0..CASES {
        let mut rng = Xoshiro256::new(0x5EED_0002 + case);
        let (src, _) = random_spec(&mut rng);
        let jobs = SweepSpec::parse(&src).unwrap().expand();
        let mut tokens: Vec<String> = jobs.iter().map(Job::token).collect();
        tokens.sort();
        let before = tokens.len();
        tokens.dedup();
        assert_eq!(
            tokens.len(),
            before,
            "case {case}: duplicate job IDs\n{src}"
        );
    }
}

#[test]
fn expansion_order_and_fingerprint_are_stable_across_parses() {
    for case in 0..CASES {
        let mut rng = Xoshiro256::new(0x5EED_0003 + case);
        let (src, _) = random_spec(&mut rng);
        let a = SweepSpec::parse(&src).unwrap();
        let b = SweepSpec::parse(&src).unwrap();
        assert_eq!(a, b, "case {case}: parse is deterministic");
        assert_eq!(a.expand(), b.expand(), "case {case}: expansion is stable");
        assert_eq!(a.canonical(), b.canonical(), "case {case}: fingerprint");
    }
}

/// One corruption kind per iteration, applied to a fresh valid spec:
/// every corrupted document must be refused with a message that names
/// the offence (the parse error enumerations under test).
#[test]
fn corrupted_specs_are_rejected_with_enumerated_errors() {
    // (corruption, expected error fragment)
    type Corruption = fn(&mut Xoshiro256) -> String;
    let corruptions: &[(Corruption, &str)] = &[
        (
            |rng| {
                let b = rng.next_range(1, 100);
                format!(
                    r#"{{"v":1,"commit":5,"axes":{{"scheme":["cc"],"workload":["fft"],"bound":[{b},{b}]}}}}"#
                )
            },
            "repeats value",
        ),
        (
            |rng| {
                let c = 17 + rng.next_below(100);
                format!(
                    r#"{{"v":1,"commit":5,"axes":{{"scheme":["cc"],"workload":["fft"],"cores":[{c}]}}}}"#
                )
            },
            "out of range",
        ),
        (
            |rng| {
                let v = 2 + rng.next_below(100);
                format!(r#"{{"v":{v},"commit":5,"axes":{{"scheme":["cc"],"workload":["fft"]}}}}"#)
            },
            "unsupported sweep-spec version",
        ),
        (
            |_| r#"{"v":1,"commit":5,"axes":{"scheme":["warp9"],"workload":["fft"]}}"#.to_string(),
            "cc|bounded|unbounded|quantum|adaptive|p2p",
        ),
        (
            |rng| {
                let f = format!("field{}", rng.next_below(1000));
                format!(
                    r#"{{"v":1,"commit":5,"{f}":1,"axes":{{"scheme":["cc"],"workload":["fft"]}}}}"#
                )
            },
            "unknown sweep-spec field",
        ),
        (
            |rng| {
                let s = format!("{}.5", rng.next_below(1000));
                format!(
                    r#"{{"v":1,"commit":5,"axes":{{"scheme":["cc"],"workload":["fft"],"seed":[{s}]}}}}"#
                )
            },
            "non-negative integer",
        ),
        (
            |_| r#"{"v":1,"commit":0,"axes":{"scheme":["cc"],"workload":["fft"]}}"#.to_string(),
            "at least 1",
        ),
    ];
    for case in 0..CASES {
        let mut rng = Xoshiro256::new(0x5EED_0004 + case);
        let (gen, expect) = corruptions[rng.next_below(corruptions.len() as u64) as usize];
        let src = gen(&mut rng);
        let err = SweepSpec::parse(&src).expect_err(&src).to_string();
        assert!(
            err.contains(expect),
            "case {case}: expected {expect:?} in {err:?} for\n{src}"
        );
    }
}
