//! Bench: simulated-cycles-per-second of the engines under the main slack
//! schemes (the raw speed behind Figure 4's Y axis).
//!
//! A plain `main()` timing harness over `std::time::Instant` — no external
//! bench framework, so it runs in fully offline builds. Invoke with
//! `cargo bench --bench engine_throughput`.

use std::time::Instant;

use slacksim::scheme::Scheme;
use slacksim::{Benchmark, EngineKind, Simulation};

const ITERS: u32 = 5;

fn run(engine: EngineKind, scheme: Scheme) {
    let report = Simulation::new(Benchmark::Fft)
        .cores(8)
        .commit_target(40_000)
        .seed(1)
        .scheme(scheme)
        .engine(engine)
        .run()
        .expect("bench run");
    assert!(report.committed >= 40_000);
}

fn bench(label: &str, mut f: impl FnMut()) {
    f(); // warm-up
    let mut times = Vec::with_capacity(ITERS as usize);
    for _ in 0..ITERS {
        let t = Instant::now();
        f();
        times.push(t.elapsed());
    }
    times.sort();
    let median = times[times.len() / 2];
    let total: std::time::Duration = times.iter().sum();
    println!(
        "{label:<40} median {median:>12?}  mean {:>12?}  ({ITERS} iters)",
        total / ITERS
    );
}

fn main() {
    println!("engine_throughput (FFT, 8 cores, 40k commits)");
    for (name, scheme) in [
        ("cycle-by-cycle", Scheme::CycleByCycle),
        ("bounded-8", Scheme::BoundedSlack { bound: 8 }),
        ("unbounded", Scheme::UnboundedSlack),
        ("quantum-50", Scheme::Quantum { quantum: 50 }),
    ] {
        let s = scheme.clone();
        bench(&format!("sequential/{name}"), move || {
            run(EngineKind::Sequential, s.clone())
        });
    }
    // The threaded engine is dominated by synchronisation on small hosts;
    // bench only the scheme extremes.
    for (name, scheme) in [
        ("cycle-by-cycle", Scheme::CycleByCycle),
        ("unbounded", Scheme::UnboundedSlack),
    ] {
        let s = scheme.clone();
        bench(&format!("threaded/{name}"), move || {
            run(EngineKind::Threaded, s.clone())
        });
    }
}
