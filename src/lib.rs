//! # SlackSim-RS
//!
//! A production-quality Rust reproduction of *"Adaptive and Speculative
//! Slack Simulations of CMPs on CMPs"* (Jianwei Chen, Lakshmi Kumar
//! Dabbiru, Murali Annavaram, Michel Dubois — MoBS 2010): a parallel
//! simulator of chip multiprocessors that runs on chip multiprocessors,
//! with bounded/unbounded/adaptive *slack* between the simulated cores'
//! clocks, timestamp-monitor violation detection, and checkpoint/rollback
//! speculation.
//!
//! This facade crate wires the three layers together:
//!
//! * [`slacksim_core`] — the slack-simulation kernel (schemes, violation
//!   detection, adaptive control, speculation, engines);
//! * [`slacksim_cmp`] — the paper's 8-core snooping-bus target CMP;
//! * [`slacksim_workloads`] — synthetic SPLASH-2-like workloads.
//!
//! ## Quickstart
//!
//! ```
//! use slacksim::{Benchmark, EngineKind, Simulation};
//! use slacksim::scheme::Scheme;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let report = Simulation::new(Benchmark::Fft)
//!     .cores(4)
//!     .scheme(Scheme::BoundedSlack { bound: 8 })
//!     .engine(EngineKind::Sequential)
//!     .commit_target(50_000)
//!     .seed(1)
//!     .run()?;
//! println!(
//!     "{} cycles, CPI {:.2}, {} violations",
//!     report.global_cycles,
//!     report.cpi(),
//!     report.violations.total()
//! );
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use slacksim_cmp::config::{CmpConfig, CoreConfig, UncoreConfig, UncoreKind};
pub use slacksim_core::checkpoint::{CheckpointMode, Checkpointable};
pub use slacksim_core::engine::{BurstPolicy, EngineConfig, EngineError};
pub use slacksim_core::model;
pub use slacksim_core::obs::{
    LiveConfig, LiveStats, ObsConfig, ObsData, ProfData, ProfSite, Profiler, HEARTBEAT_VERSION,
};
pub use slacksim_core::sched::{HostSched, SchedRef, SchedSite, TaskId};
pub use slacksim_core::scheme;
pub use slacksim_core::speculative::{SpeculationConfig, ViolationSelect};
pub use slacksim_core::stats::{percent_error, SimReport};
pub use slacksim_core::violation::ViolationKind;
pub use slacksim_core::Cycle;
pub use slacksim_workloads::{Benchmark, WorkloadParams};

/// Re-export of the target-CMP crate.
pub use slacksim_cmp;
/// Re-export of the kernel crate.
pub use slacksim_core;
/// Re-export of the workloads crate.
pub use slacksim_workloads;

use std::path::PathBuf;

use slacksim_cmp::core::CmpCore;
use slacksim_cmp::isa::InstrStream;
use slacksim_cmp::uncore::CmpUncore;
use slacksim_core::engine::{
    BatchedEngine, CheckpointView, EngineResume, SaveHook, SequentialEngine, ThreadedEngine,
};
use slacksim_core::persist;
use slacksim_core::scheme::Scheme;

mod snapshot;
pub mod sweep;

/// Which execution engine drives the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// Deterministic single-threaded engine (reproducible accuracy
    /// experiments; host-scheduling nondeterminism is emulated by a
    /// seeded burst scheduler).
    #[default]
    Sequential,
    /// One host thread per target core plus the manager — the paper's
    /// actual CMP-on-CMP execution (wall-clock experiments).
    Threaded,
    /// Quantum-compiled single-threaded engine: steps every core a full
    /// quantum per iteration over struct-of-arrays hot state, resolving
    /// cross-core events only at quantum boundaries. Bit-identical to
    /// [`Sequential`](EngineKind::Sequential) under barrier schemes, at a
    /// fraction of the host cost; requires `--scheme quantum`.
    Batched,
}

/// Builder for a complete slack-simulation run: target CMP + workload +
/// scheme + engine.
///
/// See the [crate-level example](crate) for typical use.
#[derive(Debug, Clone)]
pub struct Simulation {
    benchmark: Benchmark,
    cmp: CmpConfig,
    scheme: Scheme,
    engine: EngineKind,
    commit_target: u64,
    max_cycles: u64,
    seed: u64,
    max_burst: u64,
    max_lead: u64,
    shards: usize,
    speculation: Option<SpeculationConfig>,
    obs: Option<ObsConfig>,
    profile: bool,
    live: Option<LiveConfig>,
    sched: Option<SchedRef>,
    save_state: Option<PathBuf>,
    resume: Option<PathBuf>,
}

impl Simulation {
    /// Starts a builder for the given benchmark with the paper's default
    /// target (8 cores) and scheme (cycle-by-cycle).
    pub fn new(benchmark: Benchmark) -> Self {
        Simulation {
            benchmark,
            cmp: CmpConfig::paper(),
            scheme: Scheme::CycleByCycle,
            engine: EngineKind::Sequential,
            commit_target: 2_000_000,
            max_cycles: 1 << 40,
            seed: 1,
            max_burst: 16,
            max_lead: 256,
            shards: 1,
            speculation: None,
            obs: None,
            profile: false,
            live: None,
            sched: None,
            save_state: None,
            resume: None,
        }
    }

    /// Sets the number of target cores (the paper uses 8). The value is
    /// validated against the selected interconnect's ceiling when the run
    /// starts ([`run`](Simulation::run) returns [`EngineError::Config`]
    /// for an out-of-range count), so `cores` and
    /// [`uncore`](Simulation::uncore) may be set in either order.
    pub fn cores(&mut self, cores: usize) -> &mut Self {
        self.cmp.cores = cores;
        self
    }

    /// Selects the uncore interconnect: the paper's snooping bus (up to
    /// 16 cores) or the sharded directory (up to 1024 cores).
    pub fn uncore(&mut self, kind: UncoreKind) -> &mut Self {
        self.cmp.uncore_kind = kind;
        self
    }

    /// Replaces the whole target-CMP configuration.
    pub fn cmp_config(&mut self, cmp: CmpConfig) -> &mut Self {
        self.cmp = cmp;
        self
    }

    /// Sets the slack scheme.
    pub fn scheme(&mut self, scheme: Scheme) -> &mut Self {
        self.scheme = scheme;
        self
    }

    /// Selects the execution engine.
    pub fn engine(&mut self, engine: EngineKind) -> &mut Self {
        self.engine = engine;
        self
    }

    /// Sets the aggregate committed-instruction target (the paper runs
    /// 100 M; defaults to 2 M for laptop-scale runs).
    pub fn commit_target(&mut self, instructions: u64) -> &mut Self {
        self.commit_target = instructions;
        self
    }

    /// Sets the safety cap on simulated cycles.
    pub fn max_cycles(&mut self, cycles: u64) -> &mut Self {
        self.max_cycles = cycles;
        self
    }

    /// Sets the run seed (workload streams and the deterministic
    /// engine's scheduler).
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.seed = seed;
        self
    }

    /// Sets the deterministic engine's maximum scheduling burst.
    pub fn max_burst(&mut self, cycles: u64) -> &mut Self {
        self.max_burst = cycles;
        self
    }

    /// Sets the implementation cap on core lead over global time under
    /// greedy schemes (see `EngineConfig::max_lead`).
    pub fn max_lead(&mut self, cycles: u64) -> &mut Self {
        self.max_lead = cycles;
        self
    }

    /// Sets the threaded engine's manager-tree width: `shards` manager
    /// threads each consolidating a contiguous slice of the target cores,
    /// with the root (shard 0, folded into the manager thread)
    /// reconciling per-shard minimum times. `1` (the default) runs the
    /// classic single-manager loop unchanged; values above the core count
    /// are clamped. A host knob only — simulated results are identical
    /// for every value — so it is ignored by the other engines and
    /// excluded from snapshot fingerprints.
    pub fn shards(&mut self, shards: usize) -> &mut Self {
        self.shards = shards.max(1);
        self
    }

    /// Enables checkpointing / speculation.
    pub fn speculation(&mut self, spec: SpeculationConfig) -> &mut Self {
        self.speculation = Some(spec);
        self
    }

    /// Enables observability: trace recording and metrics sampling. The
    /// finished report then carries [`ObsData`] (Chrome-trace / CSV
    /// exportable) in [`SimReport::obs`].
    pub fn observability(&mut self, obs: ObsConfig) -> &mut Self {
        self.obs = Some(obs);
        self
    }

    /// Enables the host-time span profiler: every engine thread
    /// attributes its wall-clock time to a fixed set of sites (core
    /// ticks, wait-ladder tiers, manager drain/service, checkpointing,
    /// persist I/O). The finished report then carries [`ProfData`] in
    /// [`SimReport::prof`], renderable as a table or CSV. Profiling never
    /// perturbs simulation results — only host time is observed.
    pub fn profile(&mut self, enabled: bool) -> &mut Self {
        self.profile = enabled;
        self
    }

    /// Enables live run telemetry: a heartbeat line of JSON emitted on a
    /// host-time cadence to the sinks configured in [`LiveConfig`]
    /// (stderr and/or an atomically replaced status file). The emitter
    /// runs on its own observer thread and reads engine-published
    /// atomics, so simulation threads are never stalled.
    pub fn live(&mut self, live: LiveConfig) -> &mut Self {
        self.live = Some(live);
        self
    }

    /// Installs a custom host scheduler for the threaded engine's wait
    /// paths (used by the conformance harness to explore interleavings
    /// deterministically; production runs keep the native default).
    pub fn host_sched(&mut self, sched: SchedRef) -> &mut Self {
        self.sched = Some(sched);
        self
    }

    /// Persists every committed checkpoint into `dir` as a durable
    /// `cp-<ordinal>` snapshot file (atomically written; older
    /// checkpoints are pruned so the directory holds the latest one).
    /// Requires checkpointing to be enabled via
    /// [`speculation`](Simulation::speculation).
    pub fn save_state(&mut self, dir: impl Into<PathBuf>) -> &mut Self {
        self.save_state = Some(dir.into());
        self
    }

    /// Resumes the run from the given snapshot file instead of cycle
    /// zero. The builder's configuration (benchmark, scheme, cores, seed,
    /// checkpoint mode) must match the run that produced the snapshot;
    /// [`run`](Simulation::run) fails with [`EngineError::Resume`]
    /// otherwise.
    pub fn resume(&mut self, path: impl Into<PathBuf>) -> &mut Self {
        self.resume = Some(path.into());
        self
    }

    /// The configuration fingerprint embedded in snapshot headers:
    /// everything that must match between the run that saved a snapshot
    /// and the run that resumes from it. Engine kind and commit target
    /// are deliberately excluded — a snapshot may be resumed under either
    /// engine and toward a different target.
    fn config_fingerprint(&self) -> String {
        let cp_mode = match self.speculation {
            None => "off".to_owned(),
            Some(s) => format!(
                "{}@{}",
                match s.mode {
                    CheckpointMode::Full => "full",
                    CheckpointMode::Delta => "delta",
                },
                s.interval
            ),
        };
        format!(
            "bench={}/scheme={}/uncore={}/cores={}/seed={}/cpmode={cp_mode}",
            self.benchmark.name(),
            snapshot::scheme_token(&self.scheme),
            self.cmp.uncore_kind,
            self.cmp.cores,
            self.seed,
        )
    }

    /// Builds the save hook handed to the engine when `--save-state` is
    /// active: encodes the checkpoint view, writes it atomically to
    /// `cp-<ordinal>`, and prunes older checkpoints on success.
    fn build_save_hook(&self) -> Option<SaveHook<CmpCore, CmpUncore>> {
        let dir = self.save_state.clone()?;
        let fingerprint = self.config_fingerprint();
        Some(Box::new(
            move |view: &CheckpointView<'_, CmpCore, CmpUncore>| {
                let payload = snapshot::encode_snapshot(view);
                // Version 3 only when the payload actually carries the
                // shard section; single-manager snapshots keep writing
                // byte-identical version-2 containers.
                let version = if view.shard_forwarded.is_empty() {
                    persist::FORMAT_VERSION
                } else {
                    persist::FORMAT_VERSION_SHARDED
                };
                let bytes = persist::encode_container_versioned(version, &fingerprint, &payload);
                let path = snapshot::checkpoint_path(&dir, view.ordinal);
                match persist::write_atomic(&path, &bytes) {
                    Ok(()) => {
                        snapshot::prune_checkpoints(&dir, view.ordinal);
                        Some(bytes.len() as u64)
                    }
                    Err(e) => {
                        eprintln!(
                            "warning: failed to persist checkpoint {}: {e}",
                            path.display()
                        );
                        None
                    }
                }
            },
        ))
    }

    /// Loads and validates the snapshot named by `--resume`, producing
    /// restored engine state over freshly built models.
    fn load_resume(
        &self,
        path: &std::path::Path,
    ) -> Result<EngineResume<CmpCore, CmpUncore>, EngineError> {
        let bytes = std::fs::read(path).map_err(|e| {
            EngineError::Resume(format!("cannot read snapshot {}: {e}", path.display()))
        })?;
        let (found_fp, payload) = persist::decode_container(&bytes)
            .map_err(|e| EngineError::Resume(format!("{}: {e}", path.display())))?;
        persist::check_fingerprint(&self.config_fingerprint(), found_fp)
            .map_err(|e| EngineError::Resume(e.to_string()))?;
        snapshot::decode_snapshot(
            payload,
            self.build_cores(),
            CmpUncore::new(&self.cmp),
            &self.scheme,
            self.speculation.map(|s| s.interval),
        )
        .map_err(|e| EngineError::Resume(format!("{}: {e}", path.display())))
    }

    /// Builds the engine configuration this run will use.
    fn engine_config(&self) -> EngineConfig {
        let mut cfg = EngineConfig::new(self.scheme.clone(), self.commit_target);
        cfg.max_cycles = self.max_cycles;
        cfg.seed = self.seed;
        cfg.burst = BurstPolicy::new(self.max_burst);
        cfg.max_lead = self.max_lead;
        cfg.shards = self.shards;
        cfg.speculation = self.speculation;
        cfg.obs = self.obs;
        if self.profile {
            cfg.prof = Some(Profiler::enabled());
        }
        cfg.live = self.live.clone();
        if let Some(sched) = &self.sched {
            cfg.sched = sched.clone();
        }
        cfg
    }

    /// Builds the target cores with their workload streams attached.
    fn build_cores(&self) -> Vec<CmpCore> {
        let n = self.cmp.cores;
        let seed = self.seed;
        let benchmark = self.benchmark;
        CmpCore::build_cmp(&self.cmp, |i| -> Box<dyn InstrStream> {
            benchmark.stream(&WorkloadParams::new(i, n, seed))
        })
    }

    /// Runs the simulation to completion.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Config`] when the core count is outside the
    /// selected interconnect's supported range, propagates
    /// [`EngineError`] from the engine (no cores, stall), and returns
    /// [`EngineError::Resume`] / [`EngineError::Persist`] when a snapshot
    /// cannot be restored or the save directory cannot be set up.
    pub fn run(&self) -> Result<SimReport, EngineError> {
        let max = self.cmp.uncore_kind.max_cores();
        if self.cmp.cores == 0 || self.cmp.cores > max {
            return Err(EngineError::Config(format!(
                "core count {} is outside the supported range 1..={max} for the {} uncore",
                self.cmp.cores, self.cmp.uncore_kind
            )));
        }
        let cores = self.build_cores();
        let uncore = CmpUncore::new(&self.cmp);
        let cfg = self.engine_config();
        let resume = match &self.resume {
            Some(path) => Some(self.load_resume(path)?),
            None => None,
        };
        let hook = match &self.save_state {
            Some(dir) => {
                std::fs::create_dir_all(dir).map_err(|e| {
                    EngineError::Persist(format!(
                        "cannot create checkpoint directory {}: {e}",
                        dir.display()
                    ))
                })?;
                self.build_save_hook()
            }
            None => None,
        };
        match self.engine {
            EngineKind::Sequential => {
                let mut engine = SequentialEngine::new(cores, uncore, cfg);
                if let Some(hook) = hook {
                    engine = engine.with_save_hook(hook);
                }
                if let Some(res) = resume {
                    engine = engine.with_resume(res);
                }
                engine.run()
            }
            EngineKind::Threaded => {
                let mut engine = ThreadedEngine::new(cores, uncore, cfg);
                if let Some(hook) = hook {
                    engine = engine.with_save_hook(hook);
                }
                if let Some(res) = resume {
                    engine = engine.with_resume(res);
                }
                engine.run()
            }
            EngineKind::Batched => {
                let mut engine = BatchedEngine::new(cores, uncore, cfg);
                if let Some(hook) = hook {
                    engine = engine.with_save_hook(hook);
                }
                if let Some(res) = resume {
                    engine = engine.with_resume(res);
                }
                engine.run()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_match_paper() {
        let sim = Simulation::new(Benchmark::Lu);
        assert_eq!(sim.cmp.cores, 8);
        assert_eq!(sim.scheme, Scheme::CycleByCycle);
        assert_eq!(sim.engine, EngineKind::Sequential);
    }

    #[test]
    fn small_run_completes() {
        let report = Simulation::new(Benchmark::Fft)
            .cores(2)
            .commit_target(20_000)
            .run()
            .expect("run succeeds");
        assert!(report.committed >= 20_000);
        assert_eq!(report.violations.total(), 0, "CC run");
        assert!(report.uncore.get("bus_transactions") > 0);
    }

    #[test]
    fn out_of_range_cores_fail_with_a_config_error() {
        let err = Simulation::new(Benchmark::Fft)
            .cores(32)
            .run()
            .expect_err("32 cores exceed the bus ceiling");
        assert!(matches!(err, EngineError::Config(_)));
        assert!(err.to_string().contains("1..=16"), "{err}");

        let err = Simulation::new(Benchmark::Fft)
            .cores(0)
            .run()
            .expect_err("zero cores");
        assert!(matches!(err, EngineError::Config(_)));
    }

    #[test]
    fn directory_uncore_runs_past_the_bus_cap() {
        let report = Simulation::new(Benchmark::Fft)
            .uncore(UncoreKind::Directory)
            .cores(32)
            .commit_target(20_000)
            .run()
            .expect("run succeeds");
        assert!(report.committed >= 20_000);
        assert!(report.uncore.get("dir_transactions") > 0);
        assert_eq!(report.uncore.get("bus_transactions"), 0);
    }
}
