//! The simulated synchronisation device.
//!
//! Barriers and locks are executed *reliably inside the simulator* — the
//! SlackSim approach inherited from MP_Simplesim's parallel-programming
//! APIs — which is why simulated-workload-state violations cannot occur
//! (paper §3). The device lives in the manager; cores spin (burning
//! simulated cycles) until released, so synchronisation still distorts
//! timing under slack even though it can never corrupt workload state.

use std::collections::{HashMap, VecDeque};

use slacksim_core::checkpoint::Checkpointable;
use slacksim_core::event::CoreId;
use slacksim_core::persist::{ByteReader, ByteWriter, PersistError};
use slacksim_core::time::Cycle;

use crate::sharers::SharerSet;

/// Barrier arrival state for one episode.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct BarrierState {
    arrived: SharerSet,
    latest_ts: Cycle,
}

/// Lock state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct LockState {
    holder: Option<CoreId>,
    free_at: Cycle,
    waiters: VecDeque<(CoreId, Cycle)>,
}

/// Manager-side barrier and lock device.
///
/// # Examples
///
/// ```
/// use slacksim_cmp::sync::SyncDevice;
/// use slacksim_core::event::CoreId;
/// use slacksim_core::time::Cycle;
///
/// let mut dev = SyncDevice::new(2, 4, 2);
/// assert!(dev.barrier_arrive(CoreId::new(0), 1, Cycle::new(10)).is_none());
/// let (release, cores) = dev.barrier_arrive(CoreId::new(1), 1, Cycle::new(30)).unwrap();
/// assert_eq!(release, Cycle::new(34)); // last arrival + barrier latency
/// assert_eq!(cores.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct SyncDevice {
    n_cores: usize,
    barrier_latency: u64,
    lock_latency: u64,
    barriers: HashMap<u32, BarrierState>,
    locks: HashMap<u32, LockState>,
    barriers_completed: u64,
    lock_grants: u64,
    lock_contended: u64,
    /// Mutation generation (tracking metadata: excluded from equality).
    /// Synchronisation episodes are rare relative to checkpoint intervals,
    /// so a whole-struct generation keeps the device's delta all-or-nothing
    /// — and usually empty.
    gen: u64,
}

/// Equality is over model state only; the generation counter is capture
/// bookkeeping.
impl PartialEq for SyncDevice {
    fn eq(&self, other: &Self) -> bool {
        self.n_cores == other.n_cores
            && self.barrier_latency == other.barrier_latency
            && self.lock_latency == other.lock_latency
            && self.barriers == other.barriers
            && self.locks == other.locks
            && self.barriers_completed == other.barriers_completed
            && self.lock_grants == other.lock_grants
            && self.lock_contended == other.lock_contended
    }
}

impl Eq for SyncDevice {}

/// Incremental state carrier for the [`SyncDevice`]: whole-struct,
/// present only when the device mutated since the capture baseline.
#[derive(Debug, Clone)]
pub struct SyncDeviceDelta {
    gen: u64,
    state: Option<Box<SyncDevice>>,
}

impl SyncDeviceDelta {
    /// Whether the delta carries any state.
    pub fn is_dirty(&self) -> bool {
        self.state.is_some()
    }
}

impl Checkpointable for SyncDevice {
    type Delta = SyncDeviceDelta;

    fn generation(&self) -> u64 {
        self.gen
    }

    fn capture_delta(&mut self, since_gen: u64) -> SyncDeviceDelta {
        SyncDeviceDelta {
            gen: self.gen,
            state: (self.gen > since_gen).then(|| Box::new(self.clone())),
        }
    }

    fn apply_delta(&mut self, delta: SyncDeviceDelta) {
        let gen = self.gen.max(delta.gen);
        if let Some(state) = delta.state {
            *self = *state;
        }
        self.gen = gen;
    }

    fn restore_from(&mut self, base: &Self, since_gen: u64) {
        if self.gen > since_gen {
            let live_gen = self.gen;
            *self = base.clone();
            self.gen = live_gen; // generations are never rewound
        }
    }
}

impl SyncDevice {
    /// Creates a device for `n_cores` participants with the given
    /// release/handover latencies.
    ///
    /// # Panics
    ///
    /// Panics if `n_cores` is 0 or exceeds
    /// [`MAX_DIRECTORY_CORES`](crate::directory::MAX_DIRECTORY_CORES)
    /// (the arrival set scales with the directory uncore's ceiling).
    pub fn new(n_cores: usize, barrier_latency: u64, lock_latency: u64) -> Self {
        let max = crate::directory::MAX_DIRECTORY_CORES;
        assert!(
            (1..=max).contains(&n_cores),
            "core count must be between 1 and {max}"
        );
        SyncDevice {
            n_cores,
            barrier_latency,
            lock_latency,
            barriers: HashMap::new(),
            locks: HashMap::new(),
            barriers_completed: 0,
            lock_grants: 0,
            lock_contended: 0,
            gen: 0,
        }
    }

    /// Registers `core`'s arrival at barrier episode `id` at simulated
    /// time `ts`. When the last participant arrives, returns the release
    /// time and the cores to release.
    ///
    /// Duplicate arrivals by the same core in one episode are idempotent.
    pub fn barrier_arrive(
        &mut self,
        core: CoreId,
        id: u32,
        ts: Cycle,
    ) -> Option<(Cycle, Vec<CoreId>)> {
        self.gen += 1;
        let n = self.n_cores;
        let st = self.barriers.entry(id).or_default();
        st.arrived.insert(core);
        st.latest_ts = st.latest_ts.max(ts);
        if st.arrived.len() == n {
            let release = st.latest_ts + self.barrier_latency;
            self.barriers.remove(&id);
            self.barriers_completed += 1;
            Some((release, CoreId::all(n).collect()))
        } else {
            None
        }
    }

    /// Requests lock `id` for `core` at time `ts`. Returns the grant time
    /// when the lock is free, or `None` when the core is queued behind the
    /// current holder.
    pub fn lock_acquire(&mut self, core: CoreId, id: u32, ts: Cycle) -> Option<Cycle> {
        self.gen += 1;
        let latency = self.lock_latency;
        let st = self.locks.entry(id).or_default();
        if st.holder.is_none() {
            st.holder = Some(core);
            let grant = ts.max(st.free_at) + latency;
            self.lock_grants += 1;
            Some(grant)
        } else {
            self.lock_contended += 1;
            st.waiters.push_back((core, ts));
            None
        }
    }

    /// Releases lock `id` at time `ts`; if a waiter is queued, returns the
    /// next holder and its grant time.
    ///
    /// Releases of unheld locks are ignored (they can only arise from
    /// malformed workloads, never from slack reordering, because a core's
    /// own event order is preserved).
    pub fn lock_release(&mut self, core: CoreId, id: u32, ts: Cycle) -> Option<(CoreId, Cycle)> {
        self.gen += 1;
        let latency = self.lock_latency;
        let st = self.locks.entry(id).or_default();
        if st.holder != Some(core) {
            return None;
        }
        st.holder = None;
        st.free_at = ts;
        if let Some((next, req_ts)) = st.waiters.pop_front() {
            st.holder = Some(next);
            let grant = req_ts.max(ts) + latency;
            self.lock_grants += 1;
            Some((next, grant))
        } else {
            None
        }
    }

    /// Barrier episodes completed.
    pub fn barriers_completed(&self) -> u64 {
        self.barriers_completed
    }

    /// Lock grants issued (immediate + handovers).
    pub fn lock_grants(&self) -> u64 {
        self.lock_grants
    }

    /// Acquire requests that found the lock held.
    pub fn lock_contended(&self) -> u64 {
        self.lock_contended
    }

    /// Barrier episodes currently waiting for arrivals.
    pub fn open_barriers(&self) -> usize {
        self.barriers.len()
    }

    /// Serializes the model state. Maps are written sorted by id so the
    /// byte stream is deterministic; core count and latencies are
    /// configuration, not stored.
    pub fn save_state(&self, w: &mut ByteWriter) {
        let mut barrier_ids: Vec<u32> = self.barriers.keys().copied().collect();
        barrier_ids.sort_unstable();
        w.u32(barrier_ids.len() as u32);
        for id in barrier_ids {
            let st = &self.barriers[&id];
            w.u32(id);
            st.arrived.save(w);
            w.u64(st.latest_ts.as_u64());
        }
        let mut lock_ids: Vec<u32> = self.locks.keys().copied().collect();
        lock_ids.sort_unstable();
        w.u32(lock_ids.len() as u32);
        for id in lock_ids {
            let st = &self.locks[&id];
            w.u32(id);
            match st.holder {
                Some(c) => {
                    w.bool(true);
                    w.u16(c.index() as u16);
                }
                None => w.bool(false),
            }
            w.u64(st.free_at.as_u64());
            w.u32(st.waiters.len() as u32);
            for &(c, ts) in &st.waiters {
                w.u16(c.index() as u16);
                w.u64(ts.as_u64());
            }
        }
        w.u64(self.barriers_completed);
        w.u64(self.lock_grants);
        w.u64(self.lock_contended);
    }

    /// Restores state written by [`SyncDevice::save_state`]. The
    /// generation counter is reset; the caller re-seeds delta baselines
    /// on resume.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError`] if the bytes are malformed or reference
    /// cores outside this device's core count.
    pub fn load_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), PersistError> {
        let core_of = |idx: u16, n: usize| -> Result<CoreId, PersistError> {
            if (idx as usize) < n {
                Ok(CoreId::new(idx))
            } else {
                Err(PersistError::Corrupt("sync device references unknown core"))
            }
        };
        let n = self.n_cores;
        let mut barriers = HashMap::new();
        for _ in 0..r.u32()? {
            let id = r.u32()?;
            let arrived = SharerSet::load(r, n)?;
            let latest_ts = Cycle::new(r.u64()?);
            barriers.insert(id, BarrierState { arrived, latest_ts });
        }
        let mut locks = HashMap::new();
        for _ in 0..r.u32()? {
            let id = r.u32()?;
            let holder = if r.bool()? {
                Some(core_of(r.u16()?, n)?)
            } else {
                None
            };
            let free_at = Cycle::new(r.u64()?);
            let n_waiters = r.u32()?;
            let mut waiters = VecDeque::with_capacity(n_waiters as usize);
            for _ in 0..n_waiters {
                let c = core_of(r.u16()?, n)?;
                let ts = Cycle::new(r.u64()?);
                waiters.push_back((c, ts));
            }
            locks.insert(
                id,
                LockState {
                    holder,
                    free_at,
                    waiters,
                },
            );
        }
        self.barriers = barriers;
        self.locks = locks;
        self.barriers_completed = r.u64()?;
        self.lock_grants = r.u64()?;
        self.lock_contended = r.u64()?;
        self.gen = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: u16) -> CoreId {
        CoreId::new(i)
    }

    fn ts(t: u64) -> Cycle {
        Cycle::new(t)
    }

    #[test]
    fn barrier_releases_at_last_arrival_plus_latency() {
        let mut dev = SyncDevice::new(3, 4, 2);
        assert!(dev.barrier_arrive(c(0), 7, ts(100)).is_none());
        assert!(dev.barrier_arrive(c(2), 7, ts(50)).is_none());
        let (release, cores) = dev.barrier_arrive(c(1), 7, ts(80)).unwrap();
        assert_eq!(release, ts(104));
        assert_eq!(cores, vec![c(0), c(1), c(2)]);
        assert_eq!(dev.barriers_completed(), 1);
        assert_eq!(dev.open_barriers(), 0);
    }

    #[test]
    fn barrier_episodes_are_independent() {
        let mut dev = SyncDevice::new(2, 0, 0);
        assert!(dev.barrier_arrive(c(0), 1, ts(5)).is_none());
        assert!(dev.barrier_arrive(c(0), 2, ts(6)).is_none());
        assert!(dev.barrier_arrive(c(1), 2, ts(7)).is_some());
        assert!(dev.barrier_arrive(c(1), 1, ts(8)).is_some());
    }

    #[test]
    fn duplicate_arrival_is_idempotent() {
        let mut dev = SyncDevice::new(2, 0, 0);
        assert!(dev.barrier_arrive(c(0), 1, ts(5)).is_none());
        assert!(dev.barrier_arrive(c(0), 1, ts(9)).is_none());
        let (release, _) = dev.barrier_arrive(c(1), 1, ts(6)).unwrap();
        // Latest timestamp still honoured.
        assert_eq!(release, ts(9));
    }

    #[test]
    fn free_lock_grants_immediately() {
        let mut dev = SyncDevice::new(4, 4, 2);
        assert_eq!(dev.lock_acquire(c(0), 9, ts(10)), Some(ts(12)));
        assert_eq!(dev.lock_grants(), 1);
    }

    #[test]
    fn contended_lock_queues_fifo() {
        let mut dev = SyncDevice::new(4, 4, 2);
        dev.lock_acquire(c(0), 9, ts(10));
        assert_eq!(dev.lock_acquire(c(1), 9, ts(11)), None);
        assert_eq!(dev.lock_acquire(c(2), 9, ts(12)), None);
        assert_eq!(dev.lock_contended(), 2);
        let (next, grant) = dev.lock_release(c(0), 9, ts(30)).unwrap();
        assert_eq!(next, c(1));
        assert_eq!(grant, ts(32));
        let (next2, grant2) = dev.lock_release(c(1), 9, ts(40)).unwrap();
        assert_eq!(next2, c(2));
        assert_eq!(grant2, ts(42));
        assert!(dev.lock_release(c(2), 9, ts(50)).is_none());
    }

    #[test]
    fn release_reflects_waiter_request_time() {
        let mut dev = SyncDevice::new(4, 4, 2);
        dev.lock_acquire(c(0), 1, ts(10));
        dev.lock_acquire(c(1), 1, ts(100));
        // Released before the waiter even asked (slack skew): grant at the
        // waiter's own request time.
        let (_, grant) = dev.lock_release(c(0), 1, ts(20)).unwrap();
        assert_eq!(grant, ts(102));
    }

    #[test]
    fn foreign_release_is_ignored() {
        let mut dev = SyncDevice::new(4, 4, 2);
        dev.lock_acquire(c(0), 1, ts(10));
        assert!(dev.lock_release(c(3), 1, ts(15)).is_none());
        // Lock still held by core 0.
        assert_eq!(dev.lock_acquire(c(2), 1, ts(20)), None);
    }

    #[test]
    fn save_load_round_trip_is_bit_identical() {
        let mut live = SyncDevice::new(4, 4, 2);
        live.barrier_arrive(c(0), 7, ts(100)); // open episode
        live.barrier_arrive(c(2), 7, ts(50));
        live.lock_acquire(c(0), 9, ts(10)); // held lock ...
        live.lock_acquire(c(1), 9, ts(11)); // ... with queued waiters
        live.lock_acquire(c(3), 9, ts(12));
        live.lock_acquire(c(2), 5, ts(20));
        live.lock_release(c(2), 5, ts(25)); // released lock, free_at set

        let mut w = ByteWriter::new();
        live.save_state(&mut w);
        let bytes = w.into_bytes();

        let mut restored = SyncDevice::new(4, 4, 2);
        let mut r = ByteReader::new(&bytes);
        restored.load_state(&mut r).expect("load succeeds");
        r.finish().expect("no trailing bytes");
        assert_eq!(restored, live);
        // The open barrier and FIFO waiter order must survive: identical
        // future behaviour on both devices.
        assert_eq!(
            restored.barrier_arrive(c(1), 7, ts(80)),
            live.barrier_arrive(c(1), 7, ts(80))
        );
        assert_eq!(
            restored.lock_release(c(0), 9, ts(30)),
            live.lock_release(c(0), 9, ts(30))
        );
        // A core index out of range must be rejected, not trusted.
        let mut small = SyncDevice::new(2, 4, 2);
        assert!(small.load_state(&mut ByteReader::new(&bytes)).is_err());
    }

    #[test]
    fn relock_after_release_uses_free_time() {
        let mut dev = SyncDevice::new(4, 4, 2);
        dev.lock_acquire(c(0), 1, ts(10));
        dev.lock_release(c(0), 1, ts(50));
        // New acquire stamped before the release: serialised after it.
        assert_eq!(dev.lock_acquire(c(1), 1, ts(20)), Some(ts(52)));
    }
}
