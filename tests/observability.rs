//! Integration tests of the observability subsystem end to end: a real
//! simulation run must produce a parseable Chrome trace with per-core
//! tracks, a consistent metrics CSV, and consistent report counters —
//! while runs without an [`ObsConfig`] must stay untraced.

use slacksim::scheme::{AdaptiveConfig, Scheme};
use slacksim::slacksim_core::obs::json::Json;
use slacksim::slacksim_core::stats::Counters;
use slacksim::{
    Benchmark, EngineKind, ObsConfig, SimReport, Simulation, SpeculationConfig, ViolationKind,
    ViolationSelect,
};

fn traced_run(engine: EngineKind, scheme: Scheme, speculate: bool) -> SimReport {
    let mut sim = Simulation::new(Benchmark::Fft);
    sim.cores(4)
        .commit_target(40_000)
        .seed(7)
        .scheme(scheme)
        .engine(engine)
        .observability(ObsConfig::default().with_sample_every(256));
    if speculate {
        sim.speculation(SpeculationConfig::speculative(
            2_000,
            ViolationSelect::all(),
        ));
    }
    sim.run().expect("traced run completes")
}

#[test]
fn obs_is_absent_without_config() {
    let report = Simulation::new(Benchmark::Fft)
        .cores(2)
        .commit_target(20_000)
        .scheme(Scheme::UnboundedSlack)
        .run()
        .expect("run completes");
    assert!(report.obs.is_none(), "no ObsConfig => no ObsData");
}

#[test]
fn adaptive_bound_trace_is_monotone_in_cycles() {
    let report = traced_run(
        EngineKind::Sequential,
        Scheme::Adaptive(AdaptiveConfig::percent(0.2, 5.0)),
        false,
    );
    let trace = &report.bound_trace;
    assert!(!trace.is_empty(), "adaptive run records bound adjustments");
    for pair in trace.windows(2) {
        assert!(
            pair[0].0 <= pair[1].0,
            "bound_trace cycles must be non-decreasing: {:?} then {:?}",
            pair[0],
            pair[1]
        );
    }
    // Every recorded bound change must also appear in the trace records.
    let obs = report.obs.as_ref().expect("obs attached");
    let changes = obs
        .records
        .iter()
        .filter(|r| {
            matches!(
                r.event,
                slacksim::slacksim_core::obs::TraceEvent::BoundChange { .. }
            )
        })
        .count();
    assert!(changes > 0, "adaptive run emits BoundChange trace events");
}

#[test]
fn counters_merge_and_tally_since_roundtrip_under_threaded_engine() {
    let report = traced_run(EngineKind::Threaded, Scheme::UnboundedSlack, false);

    // Counters::merge over the per-core counters must agree with the
    // report's own per-counter summation.
    let mut merged = Counters::new();
    for core in &report.per_core {
        merged.merge(core);
    }
    for (name, total) in merged.iter() {
        assert_eq!(
            total,
            report.core_total(name),
            "merged counter {name} disagrees with core_total"
        );
    }

    // ViolationTally::since(empty) is the identity; x.since(x) is zero.
    let tally = &report.violations;
    let empty = slacksim::slacksim_core::violation::ViolationTally::default();
    let since_empty = tally.since(&empty);
    let since_self = tally.since(tally);
    for kind in ViolationKind::ALL {
        assert_eq!(since_empty.count(kind), tally.count(kind));
        assert_eq!(since_self.count(kind), 0);
    }

    // Merging the delta back onto a copy of the baseline round-trips.
    let mut rebuilt = empty;
    rebuilt.merge(&since_empty);
    assert_eq!(rebuilt.total(), tally.total());
}

#[test]
fn chrome_trace_parses_with_one_track_per_core() {
    let report = traced_run(
        EngineKind::Threaded,
        Scheme::BoundedSlack { bound: 16 },
        true,
    );
    let obs = report.obs.as_ref().expect("obs attached");
    let doc = obs.chrome_trace_json();
    let v = Json::parse(&doc).expect("emitted trace is valid JSON");
    let events = v
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("traceEvents array");
    assert!(!events.is_empty());

    // Each core track is named and carries at least one non-metadata event.
    let track_names: Vec<&str> = events
        .iter()
        .filter(|e| e.get("name").and_then(Json::as_str) == Some("thread_name"))
        .filter_map(|e| {
            e.get("args")
                .and_then(|a| a.get("name"))
                .and_then(Json::as_str)
        })
        .collect();
    for c in 0..4 {
        let label = format!("core {c}");
        assert!(track_names.iter().any(|n| *n == label), "missing {label}");
        let on_track = events.iter().any(|e| {
            e.get("tid").and_then(Json::as_f64) == Some(c as f64)
                && e.get("ph").and_then(Json::as_str) != Some("M")
        });
        assert!(on_track, "core {c} track has no events");
    }
    assert!(track_names.contains(&"manager"));

    // Span events within each track must be ordered by begin timestamp
    // (the exporter sorts records before pairing phase begins/ends).
    let mut last_ts: std::collections::HashMap<u64, f64> = std::collections::HashMap::new();
    for e in events {
        if e.get("ph").and_then(Json::as_str) != Some("X") {
            continue;
        }
        let tid = e.get("tid").and_then(Json::as_f64).unwrap() as u64;
        let ts = e.get("ts").and_then(Json::as_f64).unwrap();
        let dur = e.get("dur").and_then(Json::as_f64).unwrap();
        assert!(dur >= 0.0);
        let prev = last_ts.entry(tid).or_insert(f64::MIN);
        assert!(
            ts + dur >= *prev,
            "track {tid}: span ending at {} precedes earlier span end {}",
            ts + dur,
            prev
        );
        *prev = (ts + dur).max(*prev);
    }

    // The speculative run must surface checkpoint activity.
    let names: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("name").and_then(Json::as_str))
        .collect();
    assert!(
        names.contains(&"checkpoint"),
        "no checkpoint spans in trace"
    );
}

#[test]
fn metrics_csv_has_sampled_time_series() {
    let report = traced_run(EngineKind::Threaded, Scheme::UnboundedSlack, false);
    let obs = report.obs.as_ref().expect("obs attached");
    let csv = obs.metrics_csv();
    let mut lines = csv.lines();
    assert_eq!(lines.next(), Some("metric,cycle,value"));
    let rows: Vec<Vec<&str>> = lines.map(|l| l.split(',').collect()).collect();
    assert!(!rows.is_empty(), "metrics CSV has data rows");
    for row in &rows {
        assert_eq!(row.len(), 3, "malformed CSV row {row:?}");
        assert!(row[1].parse::<u64>().is_ok(), "bad cycle in {row:?}");
        assert!(row[2].parse::<f64>().is_ok(), "bad value in {row:?}");
    }
    // Unbounded slack has no bound gauge, but the violation-rate and
    // queue-depth series are always sampled.
    for series in ["violation_rate", "globalq_depth", "drift.core0"] {
        assert!(
            rows.iter().any(|r| r[0] == series),
            "{series} gauge series missing"
        );
    }
    // Gauge cycles within one series are strictly increasing.
    let cycles: Vec<u64> = rows
        .iter()
        .filter(|r| r[0] == "violation_rate")
        .map(|r| r[1].parse().unwrap())
        .collect();
    assert!(cycles.len() > 1, "expected multiple samples");
    assert!(cycles.windows(2).all(|w| w[0] < w[1]));
}

/// Regression for the zero-width sampling window: with the metrics
/// cadence at 1 cycle, consecutive samples can land on the same global
/// cycle after rollbacks or lock-step commits, and the violation-rate
/// gauge used to divide by that zero-width window and record NaN. Every
/// sample reaching the registry must be finite, on both engines, under
/// rollback-heavy speculation.
#[test]
fn metrics_samples_are_always_finite() {
    for engine in [EngineKind::Sequential, EngineKind::Threaded] {
        let mut sim = Simulation::new(Benchmark::Fft);
        sim.cores(2)
            .commit_target(4_000)
            .seed(7)
            .scheme(Scheme::BoundedSlack { bound: 4 })
            .engine(engine)
            .speculation(SpeculationConfig::speculative(250, ViolationSelect::all()))
            .observability(ObsConfig::default().with_sample_every(1));
        let report = sim.run().expect("run completes");
        let obs = report.obs.as_ref().expect("obs attached");
        for (name, series) in obs.metrics.gauges() {
            for point in series {
                assert!(
                    point.value.is_finite(),
                    "{engine:?}: non-finite sample {} in gauge {name} at cycle {}",
                    point.value,
                    point.cycle
                );
            }
        }
    }
}

/// Regression for the final-partial-window bug: with a sampling cadence
/// longer than the run, no periodic sample ever fired and CSV exports
/// were empty. Both engines now flush one terminal sample at the final
/// global cycle, and when the run length is not a multiple of the
/// cadence the last sample must land exactly on the final cycle.
#[test]
fn final_partial_window_is_flushed_on_both_engines() {
    for engine in [EngineKind::Sequential, EngineKind::Threaded] {
        // Cadence far beyond the run length: only the terminal flush can
        // produce samples.
        let mut sim = Simulation::new(Benchmark::Fft);
        sim.cores(2)
            .commit_target(5_000)
            .seed(7)
            .scheme(Scheme::UnboundedSlack)
            .engine(engine)
            .observability(ObsConfig::default().with_sample_every(u64::MAX / 4));
        let report = sim.run().expect("run completes");
        let obs = report.obs.as_ref().expect("obs attached");
        for series in ["violation_rate", "globalq_depth", "drift.core0"] {
            let points = obs
                .metrics
                .gauges()
                .find(|(name, _)| *name == series)
                .map(|(_, p)| p.to_vec())
                .unwrap_or_default();
            assert_eq!(
                points.len(),
                1,
                "{engine:?}: {series} expected exactly the terminal sample"
            );
            assert_eq!(
                points[0].cycle, report.global_cycles,
                "{engine:?}: terminal {series} sample lands on the final cycle"
            );
        }

        // Odd cadence vs run length: the last sample is the terminal
        // flush at the exact final cycle, and cycles stay strictly
        // increasing (no duplicate when a periodic sample already landed
        // there).
        let mut sim = Simulation::new(Benchmark::Fft);
        sim.cores(2)
            .commit_target(5_000)
            .seed(7)
            .scheme(Scheme::UnboundedSlack)
            .engine(engine)
            .observability(ObsConfig::default().with_sample_every(997));
        let report = sim.run().expect("run completes");
        let obs = report.obs.as_ref().expect("obs attached");
        let (_, points) = obs
            .metrics
            .gauges()
            .find(|(name, _)| *name == "violation_rate")
            .expect("violation_rate sampled");
        assert_eq!(points.last().unwrap().cycle, report.global_cycles);
        assert!(points.windows(2).all(|w| w[0].cycle < w[1].cycle));
    }
}

/// Satellite of the profiler work: ring overflow must be diagnosable
/// mid-run, so the registry carries a `trace_dropped` gauge sampled on
/// the metrics cadence. A tiny ring on a busy run must show a growing
/// dropped count, and the report's dropped total must match the final
/// gauge sample.
#[test]
fn trace_dropped_gauge_tracks_ring_overflow() {
    for engine in [EngineKind::Sequential, EngineKind::Threaded] {
        let mut sim = Simulation::new(Benchmark::Fft);
        sim.cores(4)
            .commit_target(40_000)
            .seed(7)
            .scheme(Scheme::BoundedSlack { bound: 8 })
            .engine(engine)
            .observability(
                ObsConfig::default()
                    .with_sample_every(256)
                    .with_trace_capacity(16),
            );
        let report = sim.run().expect("run completes");
        let obs = report.obs.as_ref().expect("obs attached");
        let (_, points) = obs
            .metrics
            .gauges()
            .find(|(name, _)| *name == "trace_dropped")
            .expect("trace_dropped gauge sampled");
        assert!(!points.is_empty());
        assert!(
            points.windows(2).all(|w| w[0].value <= w[1].value),
            "{engine:?}: dropped counter is monotone"
        );
        let last = points.last().unwrap().value as u64;
        assert!(last > 0, "{engine:?}: 16-record rings must overflow");
        // A few records can still drop between the terminal gauge sample
        // and the end of collection (epilogue trace records), so the
        // gauge is a lower bound on the report's authoritative total.
        assert!(
            last <= obs.dropped,
            "{engine:?}: final gauge sample {last} exceeds the report total {}",
            obs.dropped
        );
    }
}
